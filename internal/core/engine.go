package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"graphit/internal/atomicutil"
	"graphit/internal/bucket"
	"graphit/internal/parallel"
)

// bucketSource abstracts next-bucket extraction and bulk re-bucketing: the
// eager thread-local bins, the lazy Julienne buckets, and (paired with the
// histogram traversal) the constant-sum path all implement it. Together
// with traversal it is the engine's pluggable axis pair — every strategy in
// the scheduling space is one (bucketSource, traversal) composition run by
// the same round loop.
type bucketSource interface {
	// next extracts the next non-empty bucket and its frontier, or
	// (bucket.NullBkt, nil) when the queue is exhausted.
	next() (int64, []uint32)
	// update bulk-moves the round's changed vertices to their new buckets
	// (no-op for eager, whose traversal re-buckets inline).
	update(ids []uint32)
	// finish folds the source's internal counters into st.
	finish(st *Stats)
}

// traversal abstracts one round's edge sweep — SparsePush, DensePull, the
// per-round Hybrid choice, or the constant-sum histogram reduction. It
// returns the vertices whose priorities changed (for bucketSource.update),
// whether the round pulled, and whether the sweep observed a cooperative
// abort (watchdog timeout or mid-round cancellation) and stopped early —
// in which case its effects may be partial and updated must be discarded.
type traversal interface {
	relax(bid, curPrio int64, frontier []uint32) (updated []uint32, pull, aborted bool)
}

// engine is one composed (bucketSource, traversal) pair plus the per-worker
// updaters whose counters the round loop folds. All parallel phases run on
// ex, the run's private executor, whose fixed worker count sized ups; ctl
// is the run's shared fault-control block (abort flag, injection hook).
type engine struct {
	o    *Ordered
	src  bucketSource
	trav traversal
	ups  []*Updater
	ex   *parallel.Executor
	ctl  *runCtl
}

// Run executes the ordered operator to completion and returns its counters.
func (o *Ordered) Run() (Stats, error) {
	return o.RunContext(context.Background())
}

// RunContext executes the ordered operator under ctx. Cancellation is
// cooperative: the engine checks ctx at every round barrier (and, when a
// RoundTimeout watchdog is active, at chunk boundaries mid-round), so a
// cancelled or expired context halts the run promptly and returns the
// partial Stats accumulated so far together with ctx.Err().
//
// Faults are contained: a panic in a traversal phase (typically a user
// edge function) is recovered and returned as a *PanicError, and a round
// exceeding Cfg.RoundTimeout or stalling for Cfg.StuckRounds rounds is
// aborted with a *StuckError — in both cases with partial Stats and the
// process, executor, and pools intact. Under Cfg.OnFault=FaultRetrySerial
// the engine instead re-executes the faulted round serially, rebuilds its
// bucket state from the priority vector, and resumes.
func (o *Ordered) RunContext(ctx context.Context) (Stats, error) {
	o.Cfg.normalize()
	if err := o.validate(); err != nil {
		return Stats{}, err
	}
	switch o.Cfg.Strategy {
	case EagerWithFusion, EagerNoFusion, Lazy, LazyConstantSum:
	default:
		return Stats{}, fmt.Errorf("core: unknown strategy %d", int(o.Cfg.Strategy))
	}
	if o.FinalizeOnPop {
		o.fin = atomicutil.NewFlags(o.G.NumVertices())
	}
	active, err := o.initialActive()
	if err != nil {
		return Stats{}, err
	}
	tr := o.tracer(ctx)
	_, isNop := tr.(NopTracer)
	trace := !isNop
	if len(active) == 0 {
		if trace {
			tr.RunStart(o.runInfo(0))
			tr.RunEnd(Stats{}, nil)
		}
		return Stats{}, nil
	}

	// The run's private executor: a persistent worker pool with a count
	// fixed at Cfg.Workers (default Workers()) for the whole run, so
	// concurrent runs with different counts are isolated — no global
	// SetWorkers override — and per-round parallel phases reuse parked
	// workers instead of spawning goroutines.
	ex := parallel.Acquire(o.Cfg.Workers)
	ctl := newRunCtl(ctx)
	var stopWatch func()
	if o.Cfg.RoundTimeout > 0 {
		stopWatch = ctl.startWatchdog(ctx, o.Cfg.RoundTimeout)
	}
	sc := getScratch()
	e := o.buildEngine(sc, ex, active, ctl)
	if trace {
		tr.RunStart(o.runInfo(len(active)))
	}
	var st Stats
	var runErr error
	clean := true
	lastProgress := int64(-1)
	for {
		fault, err := e.run(ctx, tr, trace, &st)
		// The engine (or its replacement below) is done with its source
		// either way; fold the source's counters before moving on.
		e.src.finish(&st)
		if fault == nil {
			runErr = err
			break
		}
		// A fault leaves derived state (bins, dedup flags, histograms,
		// updater buffers) partial: the scratch must not be pooled.
		clean = false
		if o.Cfg.OnFault != FaultRetrySerial || st.Relaxations <= lastProgress {
			// No retry policy — or the previous retry cycle made no
			// progress, so retrying again would loop forever on the same
			// deterministic fault.
			runErr = fault.err
			break
		}
		lastProgress = st.Relaxations
		st.Retries++
		ctl.reset()
		if fault.frontier != nil {
			if rerr := o.retryRelax(fault, &st, ctl); rerr != nil {
				runErr = rerr
				break
			}
		}
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		act := o.reactivate()
		if len(act) == 0 {
			break // the retried round reached the fixpoint
		}
		// Rebuild the engine from the authoritative priority vector on
		// fresh scratch; the dirty scratch is abandoned to the GC.
		sc = new(scratch)
		e = o.buildEngine(sc, ex, act, ctl)
	}
	if stopWatch != nil {
		stopWatch()
	}
	if trace {
		tr.RunEnd(st, runErr)
	}
	// Not deferred on purpose: scratch that went through a fault — or a
	// watchdog-driven mid-round cancellation — is dirty (partial dedup
	// flags, undrained histogram) and must not be pooled, and pooling must
	// happen only after every parallel phase has joined.
	if ctl.aborted() != abortNone {
		clean = false
	}
	if clean {
		putScratch(sc)
	}
	parallel.Release(ex)
	return st, runErr
}

// reactivate returns every vertex that must re-enter a rebuilt engine
// after a fault: non-null priority and not finalized. Together with the
// finalized flags, the priority vector is the engine's only authoritative
// state, so this set (re-bucketed by current priority) restores a
// consistent engine regardless of where the previous one faulted.
// Already-settled vertices are re-processed — their relaxations win no
// updates, so the rebuilt run still terminates with identical results.
func (o *Ordered) reactivate() []uint32 {
	null := o.nullPrio()
	var act []uint32
	for v, p := range o.Prio {
		if p == null {
			continue
		}
		if o.fin != nil && o.fin.IsSet(uint32(v)) {
			continue
		}
		act = append(act, uint32(v))
	}
	return act
}

// retryRelax re-executes one faulted round's relax phase serially and
// deterministically: a single worker sweeps the saved frontier with fresh
// scratch state (clean dedup flags, empty histogram), so the round's
// effects land exactly once even though the parallel attempt applied an
// unknown prefix of them. Min/max updates are idempotent, and constant-sum
// skips its serial Drain when aborted mid-count, so re-running the whole
// frontier is safe for every strategy (validate rejects the one unsafe
// combination, eager finalize-on-pop). Phase names seen by fault hooks
// carry the "retry." prefix; a fault during the retry itself is terminal.
func (o *Ordered) retryRelax(f *roundFault, st *Stats, ctl *runCtl) (err error) {
	rctl := &runCtl{hook: ctl.hook, prefix: RetryPrefix}
	rctl.round.Store(f.round)
	re := o.buildRetrySweep(rctl)
	defer func() {
		if r := recover(); r != nil {
			re.fold(st)
			err = asPanicError(RetryPrefix+PhaseRelax, f.round, r)
		}
	}()
	for _, u := range re.ups {
		u.curBin, u.curPrio = f.bid, f.curPrio
	}
	re.trav.relax(f.bid, f.curPrio, f.frontier)
	re.fold(st)
	return nil
}

// retrySweep is the single-worker traversal used by retryRelax: the same
// traversal type the faulted engine ran, minus the bucket source (the
// retry's bucket insertions are discarded — the rebuild re-derives them
// from the priority vector).
type retrySweep struct {
	trav traversal
	ups  []*Updater
}

func (re *retrySweep) fold(st *Stats) {
	for _, u := range re.ups {
		st.Relaxations += u.relaxations
		st.Inversions += u.inversions
		st.Processed += u.processed
		u.relaxations, u.inversions, u.processed, u.fused = 0, 0, 0, 0
	}
}

func (o *Ordered) buildRetrySweep(ctl *runCtl) *retrySweep {
	n := o.G.NumVertices()
	grain := o.Cfg.Grain
	if grain <= 0 {
		grain = parallel.DefaultGrain
	}
	sc := new(scratch)
	ex := parallel.NewExecutor(1) // w=1: runs on the caller, no goroutines
	ups := sc.getUpdaters(o, 1)
	switch o.Cfg.Strategy {
	case EagerWithFusion, EagerNoFusion:
		if o.Cfg.Direction == DensePull {
			inFron, _ := sc.getDense(n)
			return &retrySweep{trav: &eagerPull{o: o, ex: ex, ups: ups, inFron: inFron, grain: grain, ctl: ctl}, ups: ups}
		}
		bins := sc.getBins(1)
		ups[0].bins = bins[0]
		ups[0].atomics = true
		// Fusion is disabled: the retry must re-execute exactly the faulted
		// round, not chase newly generated same-bucket work (the rebuilt
		// parallel engine picks that up).
		return &retrySweep{trav: &eagerPush{o: o, ex: ex, ups: ups, bins: bins, fusion: false, grain: grain, ctl: ctl}, ups: ups}
	case LazyConstantSum:
		ups[0].atomics = true
		return &retrySweep{trav: &constSumTrav{o: o, ex: ex, sc: sc, ups: ups, hist: sc.getHist(n), grain: grain, ctl: ctl}, ups: ups}
	default: // Lazy
		t := &lazyTrav{
			o: o, ex: ex, sc: sc, ups: ups, grain: grain,
			pullThreshold: int64(o.G.NumEdges()) / 20,
			ctl:           ctl,
		}
		if !o.Cfg.NoDedup {
			t.dedup = sc.getDedup(n)
		}
		if o.Cfg.Direction != SparsePush {
			t.inFron, t.nextMap = sc.getDense(n)
		}
		return &retrySweep{trav: t, ups: ups}
	}
}

// tracer resolves the run's Tracer: the operator's explicit Trace field,
// else one carried by ctx (WithTracer), else the no-op tracer.
func (o *Ordered) tracer(ctx context.Context) Tracer {
	if o.Trace != nil {
		return o.Trace
	}
	if t, ok := TracerFrom(ctx); ok && t != nil {
		return t
	}
	return NopTracer{}
}

func (o *Ordered) runInfo(frontier int) RunInfo {
	return RunInfo{
		Strategy:    o.Cfg.Strategy.String(),
		Direction:   o.Cfg.Direction.String(),
		Delta:       o.Cfg.Delta,
		NumVertices: o.G.NumVertices(),
		NumEdges:    int64(o.G.NumEdges()),
		Frontier:    frontier,
	}
}

// buildEngine composes the (bucketSource, traversal) pair for the
// configured schedule and seeds it with the initial active set. Per-worker
// state (updaters, bins) is sized from ex's immutable worker count, the
// same count every traversal phase will run with.
func (o *Ordered) buildEngine(sc *scratch, ex *parallel.Executor, active []uint32, ctl *runCtl) *engine {
	n := o.G.NumVertices()
	w := ex.Workers()
	grain := o.Cfg.Grain
	if grain <= 0 {
		grain = parallel.DefaultGrain
	}
	ups := sc.getUpdaters(o, w)
	e := &engine{o: o, ups: ups, ex: ex, ctl: ctl}

	switch o.Cfg.Strategy {
	case EagerWithFusion, EagerNoFusion:
		bins := sc.getBins(w)
		for i, v := range active {
			bins[i%w].Insert(o.bucketOf(o.Prio[v]), v)
		}
		for i, u := range ups {
			u.bins = bins[i]
		}
		e.src = &eagerBins{o: o, bins: bins, sc: sc}
		if o.Cfg.Direction == DensePull {
			inFron, _ := sc.getDense(n)
			e.trav = &eagerPull{o: o, ex: ex, ups: ups, inFron: inFron, grain: grain, ctl: ctl}
		} else {
			for _, u := range ups {
				u.atomics = true
			}
			e.trav = &eagerPush{
				o: o, ex: ex, ups: ups, bins: bins,
				fusion: o.Cfg.Strategy == EagerWithFusion,
				grain:  grain,
				ctl:    ctl,
			}
		}
	case LazyConstantSum:
		for _, u := range ups {
			u.atomics = true
		}
		e.src = o.newLazySource(ex, active)
		e.trav = &constSumTrav{o: o, ex: ex, sc: sc, ups: ups, hist: sc.getHist(n), grain: grain, ctl: ctl}
	default: // Lazy
		e.src = o.newLazySource(ex, active)
		t := &lazyTrav{
			o: o, ex: ex, sc: sc, ups: ups, grain: grain,
			pullThreshold: int64(o.G.NumEdges()) / 20,
			ctl:           ctl,
		}
		if !o.Cfg.NoDedup {
			t.dedup = sc.getDedup(n)
		}
		if o.Cfg.Direction != SparsePush {
			t.inFron, t.nextMap = sc.getDense(n)
		}
		e.trav = t
	}
	return e
}

// phase runs one engine phase with panic containment: the injection hook
// fires first (worker 0's checkpoint), then fn; a panic from either — or
// re-raised by the executor from a worker — is recovered and converted to
// a *PanicError naming the phase and round.
func (e *engine) phase(name string, fn func()) (pe *PanicError) {
	ctl := e.ctl
	defer func() {
		if r := recover(); r != nil {
			pe = asPanicError(ctl.prefix+name, ctl.round.Load(), r)
		}
	}()
	ctl.fire(name, 0)
	fn()
	return nil
}

// fold drains the per-worker updater counters into st and returns this
// round's relaxation/processed/fused counts. It runs after every relax
// phase, including faulted ones, so partial work is always accounted.
func (e *engine) fold(st *Stats) (rRelax, rProc, rFused int64) {
	for _, u := range e.ups {
		rRelax += u.relaxations
		rProc += u.processed
		rFused += u.fused
		st.Relaxations += u.relaxations
		st.Inversions += u.inversions
		st.Processed += u.processed
		st.FusedRounds += u.fused
		u.relaxations, u.inversions, u.processed, u.fused = 0, 0, 0, 0
	}
	return rRelax, rProc, rFused
}

// recentRounds bounds the ring of completed-round events attached to a
// StuckError for diagnosis.
const recentRounds = 8

// run is the single shared round loop: extract the next bucket, check the
// stop condition, sweep edges, fold counters, bulk-update buckets — with a
// cooperative cancellation check at every round barrier. It returns a
// non-nil roundFault when a round was interrupted by a contained panic or
// a watchdog timeout (the caller decides between failing and retrying),
// and a terminal error for cancellation or a no-progress abort.
func (e *engine) run(ctx context.Context, tr Tracer, trace bool, st *Stats) (*roundFault, error) {
	o := e.o
	ctl := e.ctl
	keepRecent := o.Cfg.RoundTimeout > 0 || o.Cfg.StuckRounds > 0
	var recent []RoundEvent
	stuckRun := 0
	lastBid := int64(math.MinInt64)
	var stuckSince time.Time
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ctl.beginRound(st.Rounds + 1)
		var bid int64
		var frontier []uint32
		if pe := e.phase(PhaseNext, func() { bid, frontier = e.src.next() }); pe != nil {
			return &roundFault{err: pe, round: st.Rounds + 1}, nil
		}
		if bid == bucket.NullBkt {
			ctl.endRound()
			return nil, nil
		}
		curPrio := bid * o.Cfg.Delta
		if o.Stop != nil && o.Stop(curPrio) {
			ctl.endRound()
			return nil, nil
		}
		st.Rounds++
		for _, u := range e.ups {
			u.curBin, u.curPrio = bid, curPrio
		}
		var begin time.Time
		if trace || keepRecent {
			begin = time.Now()
		}
		var updated []uint32
		var pull, aborted bool
		pe := e.phase(PhaseRelax, func() { updated, pull, aborted = e.trav.relax(bid, curPrio, frontier) })
		rRelax, rProc, rFused := e.fold(st)
		if pe != nil {
			return &roundFault{
				err: pe, round: st.Rounds, bid: bid, curPrio: curPrio,
				frontier: append([]uint32(nil), frontier...),
			}, nil
		}
		if aborted {
			if ctl.aborted() == abortCancel {
				return nil, ctx.Err()
			}
			se := &StuckError{
				Reason: StuckRoundTimeout, Round: st.Rounds, Bucket: bid,
				Priority: curPrio, Frontier: len(frontier),
				Elapsed: time.Since(begin),
				Recent:  append([]RoundEvent(nil), recent...),
			}
			return &roundFault{
				err: se, round: st.Rounds, bid: bid, curPrio: curPrio,
				frontier: append([]uint32(nil), frontier...),
			}, nil
		}
		if r := ctl.aborted(); r != abortNone {
			// The abort raced with the round's completion: the traversal
			// never observed it, so the round's effects are fully applied.
			// Honor cancellation at this barrier; a late timeout is moot —
			// the round is done — so clear it and continue.
			if r == abortCancel {
				return nil, ctx.Err()
			}
			ctl.reset()
			ctl.beginRound(st.Rounds) // keep the watchdog timing this round's tail
		}
		if pull {
			st.PullRounds++
		}
		// One global synchronization per round: the sweep's join plus the
		// bulk bucket update (paper Figure 5, lines 12–13).
		st.GlobalSyncs++
		if pe := e.phase(PhaseUpdate, func() { e.src.update(updated) }); pe != nil {
			return &roundFault{err: pe, round: st.Rounds}, nil
		}
		ev := RoundEvent{
			Round:       st.Rounds,
			Bucket:      bid,
			Priority:    curPrio,
			Frontier:    len(frontier),
			Updated:     len(updated),
			Relaxations: rRelax,
			Processed:   rProc,
			FusedIters:  rFused,
			Pull:        pull,
			Wall:        time.Since(begin),
		}
		if trace {
			tr.Round(ev)
		}
		if keepRecent {
			if len(recent) == recentRounds {
				copy(recent, recent[1:])
				recent = recent[:recentRounds-1]
			}
			recent = append(recent, ev)
		}
		if o.Cfg.StuckRounds > 0 {
			// No-progress detector: the same bucket re-extracted with zero
			// relaxations for K consecutive rounds cannot converge — a
			// correct (bucketSource, traversal) pair either relaxes edges
			// or advances to another bucket, so this only fires on a
			// defective composition (or injected stall) and is terminal.
			if bid == lastBid && rRelax == 0 {
				if stuckRun == 0 {
					stuckSince = begin
				}
				stuckRun++
				if stuckRun >= o.Cfg.StuckRounds {
					ctl.endRound()
					return nil, &StuckError{
						Reason: StuckNoProgress, Round: st.Rounds, Bucket: bid,
						Priority: curPrio, Frontier: len(frontier),
						Elapsed: time.Since(stuckSince),
						Recent:  append([]RoundEvent(nil), recent...),
					}
				}
			} else {
				stuckRun = 0
			}
			lastBid = bid
		}
		ctl.endRound()
	}
}

// initialActive returns the initial active vertex set — Sources if given,
// otherwise every vertex with a non-null priority — validating priority
// signs along the way (only the scanned vertices can enter buckets, so the
// former O(V) validate pass is free here).
func (o *Ordered) initialActive() ([]uint32, error) {
	null := o.nullPrio()
	if o.Sources != nil {
		act := make([]uint32, 0, len(o.Sources))
		// A repeated source would enter the bins/buckets twice and could be
		// processed twice in the same bucket, inflating Processed and
		// corrupting constant-sum counts; build the active set deduplicated.
		var seen map[uint32]struct{}
		if len(o.Sources) > 1 {
			seen = make(map[uint32]struct{}, len(o.Sources))
		}
		for _, v := range o.Sources {
			if int(v) >= len(o.Prio) {
				return nil, fmt.Errorf("core: source vertex %d out of range (graph has %d vertices)", v, len(o.Prio))
			}
			p := o.Prio[v]
			if p == null {
				continue
			}
			if p < 0 {
				return nil, fmt.Errorf("core: vertex %d has negative priority %d (priorities must be non-negative)", v, p)
			}
			if seen != nil {
				if _, dup := seen[v]; dup {
					continue
				}
				seen[v] = struct{}{}
			}
			act = append(act, v)
		}
		return act, nil
	}
	var act []uint32
	for v, p := range o.Prio {
		if p == null {
			continue
		}
		if p < 0 {
			return nil, fmt.Errorf("core: vertex %d has negative priority %d (priorities must be non-negative)", v, p)
		}
		act = append(act, uint32(v))
	}
	return act, nil
}
