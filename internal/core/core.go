// Package core implements the ordered graph-processing runtime that the
// GraphIt priority-based extension compiles to: bulk-synchronous rounds over
// a bucketed priority queue, under every schedule the paper's scheduling
// language exposes — eager bucket update with and without bucket fusion
// (paper §3.2–3.3), lazy bucket update (§3.1), and lazy with constant-sum
// (histogram) reduction (§5.1) — combined with SparsePush or DensePull edge
// traversal.
//
// An algorithm supplies a priority vector, an edge update function written
// against the Updater API (the runtime face of updatePriorityMin /
// updatePriorityMax / updatePrioritySum from paper Table 1), and a Config
// chosen by the scheduling layer. The engine owns bucketing,
// synchronization, deduplication, stale-entry filtering, finalization, and
// termination — exactly the low-level details the paper's DSL hides.
package core

import (
	"fmt"
	"math"
	"time"

	"graphit/internal/atomicutil"
	"graphit/internal/bucket"
	"graphit/internal/graph"
)

// Unreached is the null priority for lower_first (min) queues: a vertex with
// this priority is in no bucket. It corresponds to the paper's ∅ / INT_MAX.
const Unreached = int64(math.MaxInt64)

// NullMax is the null priority for higher_first (max) queues.
const NullMax = int64(math.MinInt64)

// Strategy selects the bucket-update approach, mirroring the scheduling
// language's configApplyPriorityUpdate options (paper Table 2).
type Strategy int

const (
	// EagerWithFusion is eager bucket update plus bucket fusion — the
	// paper's new optimization and the default, as in Table 2.
	EagerWithFusion Strategy = iota
	// EagerNoFusion is GAPBS-style eager bucket update (paper Figure 6).
	EagerNoFusion
	// Lazy is Julienne-style buffered bucket update (paper Figure 5).
	Lazy
	// LazyConstantSum is lazy update with the histogram reduction for
	// constant-delta updatePrioritySum (paper Figure 10).
	LazyConstantSum
)

// strategyNames is indexed by Strategy; strategyByName is its static
// reverse, shared by Strategy.String and ParseStrategy.
var strategyNames = [...]string{
	EagerWithFusion: "eager_with_fusion",
	EagerNoFusion:   "eager_no_fusion",
	Lazy:            "lazy",
	LazyConstantSum: "lazy_constant_sum",
}

var strategyByName = func() map[string]Strategy {
	m := make(map[string]Strategy, len(strategyNames))
	for i, n := range strategyNames {
		m[n] = Strategy(i)
	}
	return m
}()

func (s Strategy) String() string {
	if s >= 0 && int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy parses a scheduling-language strategy name.
func ParseStrategy(s string) (Strategy, error) {
	if st, ok := strategyByName[s]; ok {
		return st, nil
	}
	return 0, fmt.Errorf("core: unknown priority-update strategy %q", s)
}

// Direction selects the edge-traversal direction, mirroring
// configApplyDirection (paper Figure 8).
type Direction int

const (
	// SparsePush iterates the out-edges of the frontier (sparse id list).
	SparsePush Direction = iota
	// DensePull iterates the in-edges of every vertex against a dense
	// frontier bitmap; destination updates need no atomics (Figure 9(b)).
	DensePull
	// Hybrid picks per round: DensePull when the frontier's out-degree sum
	// exceeds a fraction of |E| (Ligra/Julienne's direction optimization),
	// SparsePush otherwise. The paper notes Julienne pays an out-degree
	// sum per round for this and that disabling it wins for SSSP (§6.2);
	// the ablation benchmarks reproduce that. Lazy strategies only.
	Hybrid
)

// directionNames is indexed by Direction; directionByName is its static
// reverse (plus the "Hybrid" spelling), shared by Direction.String and
// ParseDirection.
var directionNames = [...]string{
	SparsePush: "SparsePush",
	DensePull:  "DensePull",
	Hybrid:     "DensePull-SparsePush",
}

var directionByName = func() map[string]Direction {
	m := make(map[string]Direction, len(directionNames)+1)
	for i, n := range directionNames {
		m[n] = Direction(i)
	}
	m["Hybrid"] = Hybrid
	return m
}()

func (d Direction) String() string {
	if d >= 0 && int(d) < len(directionNames) {
		return directionNames[d]
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// ParseDirection parses a scheduling-language direction name.
func ParseDirection(s string) (Direction, error) {
	if d, ok := directionByName[s]; ok {
		return d, nil
	}
	return 0, fmt.Errorf("core: unknown direction %q", s)
}

// Config is a complete schedule for one ordered operator, the runtime
// counterpart of the paper's Table 2 scheduling functions.
type Config struct {
	Strategy Strategy
	// Delta is the priority-coarsening factor ∆ (configApplyPriorityUpdateDelta);
	// bucket = floor(priority/∆). Values < 1 are treated as 1 (no coarsening).
	Delta int64
	// FusionThreshold is the local-bucket size limit below which a worker
	// fuses the next round without synchronizing (configBucketFusionThreshold).
	// The GAPBS-derived default is 1000.
	FusionThreshold int
	// NumBuckets is the number of materialized lazy buckets (configNumBuckets);
	// the default is 128.
	NumBuckets int
	Direction  Direction
	// Workers overrides the worker count (0 = parallel.Workers()).
	Workers int
	// Grain is the dynamic-scheduling chunk size (0 = parallel.DefaultGrain).
	Grain int
	// NoDedup disables the per-round CAS deduplication of the lazy push
	// buffer (configDeduplication). Duplicates then re-bucket more than
	// once per round; the bucket structure's extraction-time dedup keeps
	// results correct, at the cost of extra insertions — the tradeoff the
	// paper's compiler decides when it "inserts deduplication as needed"
	// (§5.1).
	NoDedup bool
	// RoundTimeout, when positive, arms a watchdog that aborts any round
	// staying in flight longer than this, returning a *StuckError (or
	// retrying under OnFault=FaultRetrySerial). The abort is cooperative —
	// checked at chunk boundaries inside traversal phases — so it catches
	// livelocks (e.g. a fusion loop that never drains) but cannot interrupt
	// a single blocked call into a user edge function. 0 disables the
	// watchdog (the default); go test -timeout remains the backstop for
	// truly hung code.
	RoundTimeout time.Duration
	// StuckRounds, when positive, aborts with a *StuckError after this many
	// consecutive rounds that extract the same bucket with zero relaxations
	// — a state a correct engine cannot reach, so it is reported as a
	// defect (never retried). 0 disables the detector (the default).
	StuckRounds int
	// OnFault selects the reaction to a contained fault (recovered panic or
	// round timeout): FaultFail (default) returns the typed error with
	// partial Stats; FaultRetrySerial re-executes the faulted round
	// serially and resumes.
	OnFault FaultPolicy
}

// DefaultConfig mirrors the scheduling language's defaults (bold options in
// paper Table 2): eager with fusion, ∆=1, threshold 1000, 128 lazy buckets,
// SparsePush.
func DefaultConfig() Config {
	return Config{
		Strategy:        EagerWithFusion,
		Delta:           1,
		FusionThreshold: 1000,
		NumBuckets:      128,
		Direction:       SparsePush,
	}
}

func (c Config) String() string {
	return fmt.Sprintf("{%s ∆=%d fuse<%d buckets=%d %s}",
		c.Strategy, c.Delta, c.FusionThreshold, c.NumBuckets, c.Direction)
}

func (c *Config) normalize() {
	if c.Delta < 1 {
		c.Delta = 1
	}
	if c.FusionThreshold <= 0 {
		c.FusionThreshold = 1000
	}
	if c.NumBuckets <= 0 {
		c.NumBuckets = 128
	}
}

// Stats reports machine-independent execution counters. Rounds and
// synchronization counts reproduce the paper's Table 6 fidelity signal.
type Stats struct {
	// Rounds is the number of bulk-synchronous rounds (bucket extractions).
	Rounds int64 `json:"rounds"`
	// FusedRounds counts bucket-fusion inner iterations that replaced what
	// would otherwise have been global rounds (eager_with_fusion only).
	FusedRounds int64 `json:"fused_rounds"`
	// GlobalSyncs counts global synchronization episodes (one per round:
	// the sweep's join plus the bulk bucket update).
	GlobalSyncs int64 `json:"global_syncs"`
	// Relaxations counts edge-function applications.
	Relaxations int64 `json:"relaxations"`
	// BucketInserts counts insertions into bucket structures.
	BucketInserts int64 `json:"bucket_inserts"`
	// WindowAdvances counts lazy overflow re-bucketing passes.
	WindowAdvances int64 `json:"window_advances"`
	// Inversions counts priority updates that landed before the bucket
	// currently being processed (clamped into it).
	Inversions int64 `json:"inversions"`
	// Processed counts vertex dequeues that passed the stale/finalized
	// filters and were actually applied.
	Processed int64 `json:"processed"`
	// PullRounds counts rounds traversed in the pull direction (equal to
	// Rounds under DensePull; per-round under Hybrid).
	PullRounds int64 `json:"pull_rounds"`
	// Retries counts serial fault-recovery cycles (OnFault=FaultRetrySerial):
	// each is one contained fault that was retried and rebuilt.
	Retries int64 `json:"retries,omitempty"`
}

func (s Stats) String() string {
	return fmt.Sprintf("rounds=%d fused=%d syncs=%d relax=%d inserts=%d windows=%d processed=%d",
		s.Rounds, s.FusedRounds, s.GlobalSyncs, s.Relaxations, s.BucketInserts, s.WindowAdvances, s.Processed)
}

// EdgeFunc is a user-defined edge update function: it receives one edge and
// performs priority updates through the Updater. It corresponds to the
// DSL's updateEdge UDF after compiler transformation (atomics and bucket
// updates inserted).
type EdgeFunc func(src, dst graph.VertexID, w graph.Weight, u *Updater)

// StopFunc is a customized stop condition checked once per round with the
// priority of the bucket about to be processed; returning true halts the
// run (paper §2: "halt once a certain vertex has been finalized").
type StopFunc func(curPrio int64) bool

// Ordered is one ordered edgeset-apply operator: the runtime object compiled
// from `while(pq.finished()==false) { ... applyUpdatePriority(f) }`.
type Ordered struct {
	G *graph.Graph
	// Prio is the priority vector backing the abstract priority queue; the
	// algorithm may alias it with its own data (e.g. dist for SSSP).
	Prio  []int64
	Order bucket.Order
	// Apply is the edge UDF. Not used by LazyConstantSum.
	Apply EdgeFunc
	// SumConst is the constant priority delta for LazyConstantSum (e.g. -1
	// for k-core); the engine applies prio += SumConst*count per round.
	SumConst int64
	// SumFloorIsCurrent clamps constant-sum results at the current bucket's
	// priority (k-core's min_threshold = k).
	SumFloorIsCurrent bool
	// FinalizeOnPop marks dequeued vertices as finalized so later priority
	// updates cannot re-bucket them (k-core semantics).
	FinalizeOnPop bool
	// Stop is an optional early-termination condition.
	Stop StopFunc
	// Sources is the initial active set; nil means every vertex with a
	// non-null priority (k-core); SSSP passes the start vertex.
	Sources []graph.VertexID
	// Trace, if set, observes the run with structured per-round events. It
	// overrides any Tracer carried by the run's context (WithTracer).
	Trace Tracer

	Cfg Config

	// fin records finalized vertices when FinalizeOnPop is set.
	fin *atomicutil.Flags
}

// FinalizedVertex reports whether v was finalized by FinalizeOnPop during
// Run (the DSL's pq.finishedVertex). It always returns false when
// FinalizeOnPop is unset.
func (o *Ordered) FinalizedVertex(v graph.VertexID) bool {
	return o.fin != nil && o.fin.IsSet(v)
}

// nullPrio returns the null priority for the configured order.
func (o *Ordered) nullPrio() int64 {
	if o.Order == bucket.Decreasing {
		return NullMax
	}
	return Unreached
}

// bucketOf maps a priority to its (coarsened) bucket id, or bucket.NullBkt
// for null priorities.
func (o *Ordered) bucketOf(p int64) int64 {
	if p == o.nullPrio() {
		return bucket.NullBkt
	}
	if o.Cfg.Delta > 1 {
		return p / o.Cfg.Delta
	}
	return p
}

// validate checks structural preconditions shared by all strategies.
func (o *Ordered) validate() error {
	if o.G == nil {
		return fmt.Errorf("core: nil graph")
	}
	if len(o.Prio) != o.G.NumVertices() {
		return fmt.Errorf("core: priority vector has %d entries for %d vertices",
			len(o.Prio), o.G.NumVertices())
	}
	if o.Cfg.Strategy != LazyConstantSum && o.Apply == nil {
		return fmt.Errorf("core: nil edge function")
	}
	if o.Cfg.Strategy == LazyConstantSum && o.SumConst == 0 {
		return fmt.Errorf("core: LazyConstantSum requires a non-zero SumConst")
	}
	if o.Cfg.Direction != SparsePush && !o.G.HasInEdges() {
		return fmt.Errorf("core: %s requires in-edges", o.Cfg.Direction)
	}
	if o.Cfg.Direction != SparsePush && o.Cfg.Strategy == LazyConstantSum {
		return fmt.Errorf("core: %s cannot be combined with lazy_constant_sum", o.Cfg.Direction)
	}
	eager := o.Cfg.Strategy == EagerWithFusion || o.Cfg.Strategy == EagerNoFusion
	if eager && o.Order != bucket.Increasing {
		return fmt.Errorf("core: eager bucket update supports lower_first (increasing) order only")
	}
	if eager && o.Cfg.Direction == Hybrid {
		return fmt.Errorf("core: hybrid direction is a lazy-engine optimization (as in Julienne); use SparsePush or DensePull with eager strategies")
	}
	if o.Cfg.Strategy == EagerWithFusion && o.Cfg.Direction == DensePull {
		return fmt.Errorf("core: bucket fusion requires SparsePush traversal")
	}
	if o.Cfg.OnFault == FaultRetrySerial && o.FinalizeOnPop && eager {
		// Eager traversals gate per-vertex processing on fin.TrySet: a
		// vertex finalized by a partially-applied round would be skipped by
		// both the serial retry and the rebuild, losing its edge sweep.
		// Lazy strategies finalize the whole frontier up-front instead, so
		// a retry re-runs the round intact — use one of those.
		return fmt.Errorf("core: OnFault=retry_serial cannot restore eager finalize-on-pop state; use a lazy strategy")
	}
	// Negative (non-null) priorities are rejected lazily, while the initial
	// frontier is built (initialActive) — not here, which would cost an O(V)
	// sweep on every Run (painful across 40 autotune trials).
	return nil
}
