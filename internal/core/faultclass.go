package core

import (
	"context"
	"errors"
)

// Fault kinds returned by ClassifyFault. They are the serving layer's
// taxonomy of run outcomes: a circuit breaker counts engine faults
// (FaultKindPanic, FaultKindStuck) against an (algo, strategy) key, while
// FaultKindCanceled outcomes are charged to the client's budget and must
// not trip anything.
const (
	// FaultKindNone marks a nil error or one that is not a run-halting
	// condition the engine classifies (e.g. a validation error).
	FaultKindNone = ""
	// FaultKindPanic marks a *PanicError: a panic recovered from an engine
	// phase, typically a user edge function.
	FaultKindPanic = "panic"
	// FaultKindStuck marks a *StuckError: a round watchdog or no-progress
	// abort.
	FaultKindStuck = "stuck"
	// FaultKindCanceled marks context cancellation or deadline expiry — the
	// caller's doing, not the engine's.
	FaultKindCanceled = "canceled"
)

// ClassifyFault maps an error returned by RunContext (or any wrapper that
// preserves the error chain) to its fault kind. Engine faults win over
// cancellation: a *PanicError that also carries a cancelled context is
// still a panic.
func ClassifyFault(err error) string {
	if err == nil {
		return FaultKindNone
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return FaultKindPanic
	}
	var se *StuckError
	if errors.As(err, &se) {
		return FaultKindStuck
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return FaultKindCanceled
	}
	return FaultKindNone
}

// IsEngineFault reports whether err is a contained engine fault — a
// recovered panic or a watchdog abort. These are the outcomes a circuit
// breaker should count: the run was admitted, validated, and then failed in
// a way that signals a bad (algorithm, schedule, input) combination rather
// than a bad request.
func IsEngineFault(err error) bool {
	k := ClassifyFault(err)
	return k == FaultKindPanic || k == FaultKindStuck
}

// StrategyNames returns the valid scheduling-language strategy names, in
// declaration order — the canonical list for CLI/server validation errors.
func StrategyNames() []string {
	return append([]string(nil), strategyNames[:]...)
}

// DirectionNames returns the valid traversal-direction names.
func DirectionNames() []string {
	return append([]string(nil), directionNames[:]...)
}

// FaultPolicyNames returns the valid fault-policy names.
func FaultPolicyNames() []string {
	return append([]string(nil), faultPolicyNames[:]...)
}
