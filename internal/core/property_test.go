package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphit/internal/bucket"
	"graphit/internal/graph"
)

// randomGraph builds a random weighted digraph from a seed.
func randomGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 20 + rng.Intn(120)
	m := n * (1 + rng.Intn(6))
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{
			Src: uint32(rng.Intn(n)),
			Dst: uint32(rng.Intn(n)),
			W:   int32(1 + rng.Intn(50)),
		})
	}
	g, err := graph.Build(edges, graph.BuildOptions{
		NumVertices: n, Weighted: true, InEdges: true,
		RemoveSelfLoops: true, RemoveDuplicates: true,
	})
	if err != nil {
		panic(err)
	}
	return g
}

// serialSSSP is an independent O(V²) Dijkstra.
func serialSSSP(g *graph.Graph, src uint32) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[src] = 0
	done := make([]bool, n)
	for {
		best, bv := Unreached, -1
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < best {
				best, bv = dist[v], v
			}
		}
		if bv < 0 {
			break
		}
		done[bv] = true
		wts := g.OutWts(uint32(bv))
		for i, d := range g.OutNeigh(uint32(bv)) {
			if nd := best + int64(wts[i]); nd < dist[d] {
				dist[d] = nd
			}
		}
	}
	return dist
}

// randomConfig derives a valid min-queue schedule from raw bytes.
func randomConfig(a, b, c, d uint8) Config {
	cfg := DefaultConfig()
	cfg.Strategy = []Strategy{EagerWithFusion, EagerNoFusion, Lazy}[int(a)%3]
	cfg.Delta = 1 << (int(b) % 9)
	cfg.FusionThreshold = []int{1, 8, 1000}[int(c)%3]
	cfg.NumBuckets = []int{2, 16, 128}[int(c/3)%3]
	if cfg.Strategy == Lazy {
		switch d % 4 {
		case 0:
			cfg.Direction = DensePull
		case 1:
			cfg.Direction = Hybrid
		}
		cfg.NoDedup = d%8 >= 4
	}
	cfg.Grain = []int{0, 4, 64}[int(d)%3]
	return cfg
}

// TestPropertySSSPAllSchedulesMatchDijkstra: for random graphs, sources,
// and schedules, the ordered engine computes exact shortest paths.
func TestPropertySSSPAllSchedulesMatchDijkstra(t *testing.T) {
	f := func(seed int64, srcSel uint16, a, b, c, d uint8) bool {
		g := randomGraph(seed)
		src := uint32(int(srcSel) % g.NumVertices())
		cfg := randomConfig(a, b, c, d)
		op, dist := ssspOp(g, src, cfg)
		if _, err := op.Run(); err != nil {
			t.Logf("cfg %v rejected: %v", cfg, err)
			return false
		}
		want := serialSSSP(g, src)
		for v := range want {
			if dist[v] != want[v] {
				t.Logf("seed=%d src=%d cfg=%v: dist[%d]=%d want %d",
					seed, src, cfg, v, dist[v], want[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStatsInvariants: counters are internally consistent across
// random runs — processed ≤ relaxation sources, fused rounds only with the
// fusion strategy, rounds positive when work was done.
func TestPropertyStatsInvariants(t *testing.T) {
	f := func(seed int64, a, b, c, d uint8) bool {
		g := randomGraph(seed)
		cfg := randomConfig(a, b, c, d)
		op, _ := ssspOp(g, 1%uint32(g.NumVertices()), cfg)
		st, err := op.Run()
		if err != nil {
			return false
		}
		if st.Processed > 0 && st.Rounds == 0 {
			return false
		}
		if cfg.Strategy != EagerWithFusion && st.FusedRounds != 0 {
			return false
		}
		if st.Relaxations < 0 || st.BucketInserts < 0 {
			return false
		}
		// Every relaxation that won inserted into a bucket, so inserts
		// never exceed relaxations (plus initial placements).
		if st.BucketInserts > st.Relaxations+int64(g.NumVertices()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyManualMatchesCompiled: the user-driven loop and RunOrdered
// agree under lazy schedules.
func TestPropertyManualMatchesCompiled(t *testing.T) {
	f := func(seed int64, b uint8) bool {
		g := randomGraph(seed)
		src := uint32(3 % g.NumVertices())
		cfg := DefaultConfig()
		cfg.Strategy = Lazy
		cfg.Delta = 1 << (int(b) % 7)

		opA, distA := ssspOp(g, src, cfg)
		if _, err := opA.Run(); err != nil {
			return false
		}
		opB, distB := ssspOp(g, src, cfg)
		m, err := NewManual(opB)
		if err != nil {
			return false
		}
		for i := 0; !m.Finished(); i++ {
			m.ApplyUpdatePriority(m.DequeueReadySet(), nil)
			if i > 10*g.NumVertices() {
				return false // no termination
			}
		}
		for v := range distA {
			if distA[v] != distB[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyApproxConvergesExactly: the approximate-ordering engine runs
// to quiescence, so its final distances are exact despite reordering.
func TestPropertyApproxConvergesExactly(t *testing.T) {
	f := func(seed int64, b uint8) bool {
		g := randomGraph(seed)
		src := uint32(5 % g.NumVertices())
		cfg := DefaultConfig()
		cfg.Delta = 1 << (int(b) % 8)
		op, dist := ssspOp(g, src, cfg)
		if _, err := op.RunApprox(); err != nil {
			return false
		}
		want := serialSSSP(g, src)
		for v := range want {
			if dist[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyKCoreAllStrategies: coreness matches sequential peeling on
// random symmetric graphs for every strategy (the constant-sum histogram,
// plain lazy, and both eager variants).
func TestPropertyKCoreAllStrategies(t *testing.T) {
	peel := func(g *graph.Graph) []int64 {
		n := g.NumVertices()
		deg := make([]int, n)
		maxDeg := 0
		for v := 0; v < n; v++ {
			deg[v] = g.OutDegree(uint32(v))
			if deg[v] > maxDeg {
				maxDeg = deg[v]
			}
		}
		buckets := make([][]uint32, maxDeg+1)
		for v := 0; v < n; v++ {
			buckets[deg[v]] = append(buckets[deg[v]], uint32(v))
		}
		core := make([]int64, n)
		removed := make([]bool, n)
		for k := 0; k <= maxDeg; k++ {
			for i := 0; i < len(buckets[k]); i++ {
				v := buckets[k][i]
				if removed[v] || deg[v] != k {
					continue
				}
				removed[v] = true
				core[v] = int64(k)
				for _, u := range g.OutNeigh(v) {
					if !removed[u] && deg[u] > k {
						deg[u]--
						b := deg[u]
						if b < k {
							b = k
						}
						buckets[b] = append(buckets[b], u)
					}
				}
			}
		}
		return core
	}
	strategies := []Strategy{LazyConstantSum, Lazy, EagerNoFusion, EagerWithFusion}
	f := func(seed int64, sSel uint8) bool {
		dg := randomGraph(seed)
		g, err := dg.Symmetrized()
		if err != nil {
			return false
		}
		n := g.NumVertices()
		deg := make([]int64, n)
		for v := 0; v < n; v++ {
			deg[v] = int64(g.OutDegree(uint32(v)))
		}
		op := &Ordered{
			G: g, Prio: deg, Order: bucket.Increasing,
			Apply: func(s, d uint32, w int32, u *Updater) {
				u.UpdatePrioritySum(d, -1, u.GetCurrentPriority())
			},
			SumConst: -1, SumFloorIsCurrent: true,
			FinalizeOnPop: true,
			Cfg:           Config{Strategy: strategies[int(sSel)%len(strategies)]},
		}
		if _, err := op.Run(); err != nil {
			return false
		}
		want := peel(g)
		for v := range want {
			if deg[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
