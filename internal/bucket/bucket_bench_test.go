package bucket

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the bucketing substrates: the per-operation costs
// these measure are the constants behind the paper's lazy-vs-eager
// tradeoff (§3).

func BenchmarkLazyInsertPopCycle(b *testing.B) {
	const n = 1 << 14
	prio := make([]int64, n)
	rng := rand.New(rand.NewSource(1))
	for i := range prio {
		prio[i] = int64(rng.Intn(1024))
	}
	bktOf := func(v uint32) int64 { return prio[v] }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := NewLazy(n, Increasing, 128, bktOf)
		for {
			bid, verts := l.Next()
			if bid == NullBkt {
				break
			}
			_ = verts
		}
	}
	b.ReportMetric(float64(n), "vertices")
}

func BenchmarkLazyUpdateBuckets(b *testing.B) {
	const n = 1 << 14
	prio := make([]int64, n)
	for i := range prio {
		prio[i] = int64(i % 997)
	}
	l := NewLazy(n, Increasing, 128, func(v uint32) int64 { return prio[v] })
	batch := make([]uint32, 256)
	for i := range batch {
		batch[i] = uint32(i * 13 % n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.UpdateBuckets(batch)
	}
}

func BenchmarkLocalBinsInsert(b *testing.B) {
	lb := &LocalBins{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lb.Insert(int64(i%512), uint32(i))
		if i%(1<<16) == 0 {
			lb.Reset()
		}
	}
}

func BenchmarkLocalBinsMinNonEmpty(b *testing.B) {
	lb := &LocalBins{}
	for i := 0; i < 1024; i += 37 {
		lb.Insert(int64(i), uint32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lb.MinNonEmpty(int64(i % 1024))
	}
}
