// Package bucket implements the two bucketing data structures that the
// paper's priority-based extension unifies (paper §3):
//
//   - Lazy: a Julienne-style bucket structure with a materialized window of
//     open buckets plus an overflow bucket, updated in bulk once per round
//     from a deduplicated buffer (paper Figure 5).
//   - LocalBins: GAPBS-style thread-local bins used by the eager engine,
//     updated immediately when a priority changes (paper Figure 6), and the
//     substrate on which bucket fusion operates (paper Figure 7).
//
// Bucket identifiers are coarsened priorities: bkt = floor(priority / ∆)
// when priority coarsening is enabled, or the raw priority otherwise. The
// structures store vertex ids only; the authoritative priority lives in the
// user's priority vector, which is consulted to filter stale entries on
// extraction (the paper's optimized interface that replaced Julienne's
// lambda calls, §5.1).
package bucket

import "math"

// NullBkt marks a vertex that is in no bucket (the paper's null priority ∅).
const NullBkt = int64(math.MaxInt64)

// Order is the processing order of buckets.
type Order int

const (
	// Increasing processes the smallest bucket first (lower_first queues:
	// SSSP, wBFS, PPSP, A*, k-core).
	Increasing Order = iota
	// Decreasing processes the largest bucket first (higher_first queues:
	// SetCover's cost-per-element buckets).
	Decreasing
)

func (o Order) String() string {
	if o == Decreasing {
		return "decreasing"
	}
	return "increasing"
}

// BktFunc reports the current bucket of a vertex, or NullBkt if the vertex
// should not appear in any bucket (finalized or never activated).
type BktFunc func(v uint32) int64
