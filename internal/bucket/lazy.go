package bucket

// Lazy is a Julienne-style bucket structure. Only NumOpen buckets are
// materialized at a time; vertices whose bucket lies outside the current
// window are kept in a single overflow bucket and re-bucketed when the
// window advances (paper §5.1). All updates happen through UpdateBuckets,
// once per vertex per round (the "lazy bucket update" approach, Figure 5).
//
// Lazy is not safe for concurrent use; the lazy engine performs its parallel
// work in the edge-map phase and calls UpdateBuckets from a single
// goroutine, exactly as the generated code in paper Figure 9(a) does after
// its parallel_for.
type Lazy struct {
	order   Order
	numOpen int
	bktOf   BktFunc

	open [][]uint32 // open[i] holds bucket id base ± i (sign per order)
	over []uint32   // overflow bucket
	base int64      // bucket id of open[0]
	cur  int        // index into open of the next candidate bucket

	// started is set by the first Next call; before that, updates may
	// freely re-bucket vertices anywhere (initialization order).
	started bool

	// A vertex can accumulate one stale copy per re-bucketing; epoch-based
	// deduplication guarantees each vertex appears at most once per
	// extracted bucket and once per redistributed overflow, even when old
	// copies collapse into the same bucket after a window advance.
	epoch    []uint64
	curEpoch uint64

	// Stats.
	Inserts    int64 // total bucket insertions (incl. overflow)
	Rebuckets  int64 // overflow re-distribution passes
	Inversions int64 // updates that landed before the current bucket
}

// NewLazy creates a lazy bucket structure over vertices [0, n) with the
// given extraction order and number of materialized buckets. Every vertex
// whose bktOf is non-null is placed in a bucket. numOpen <= 0 selects
// Julienne's default of 128 open buckets.
func NewLazy(n int, order Order, numOpen int, bktOf BktFunc) *Lazy {
	if numOpen <= 0 {
		numOpen = 128
	}
	l := &Lazy{
		order:   order,
		numOpen: numOpen,
		bktOf:   bktOf,
		open:    make([][]uint32, numOpen),
		epoch:   make([]uint64, n),
	}
	// Find the initial window base: the extreme bucket value present.
	base := NullBkt
	for v := 0; v < n; v++ {
		b := bktOf(uint32(v))
		if b == NullBkt {
			continue
		}
		if base == NullBkt || l.before(b, base) {
			base = b
		}
	}
	l.base = base
	for v := 0; v < n; v++ {
		b := bktOf(uint32(v))
		if b == NullBkt {
			continue
		}
		l.place(uint32(v), b)
	}
	return l
}

// NewLazyFrom is NewLazy restricted to an initial active set: the window
// base is computed over active instead of a full [0, n) scan, and only the
// active vertices are placed. bktOf is the unrestricted bucket function,
// consulted by all later updates and extractions (so no SetBktFunc swap is
// needed when the initial frontier is a source subset).
func NewLazyFrom(n int, order Order, numOpen int, bktOf BktFunc, active []uint32) *Lazy {
	if numOpen <= 0 {
		numOpen = 128
	}
	l := &Lazy{
		order:   order,
		numOpen: numOpen,
		bktOf:   bktOf,
		open:    make([][]uint32, numOpen),
		epoch:   make([]uint64, n),
	}
	base := NullBkt
	for _, v := range active {
		b := bktOf(v)
		if b == NullBkt {
			continue
		}
		if base == NullBkt || l.before(b, base) {
			base = b
		}
	}
	l.base = base
	for _, v := range active {
		if b := bktOf(v); b != NullBkt {
			l.place(v, b)
		}
	}
	return l
}

// before reports whether bucket a is processed strictly before bucket b.
func (l *Lazy) before(a, b int64) bool {
	if l.order == Increasing {
		return a < b
	}
	return a > b
}

// slot returns the window index of bucket b relative to base, or -1 if b is
// outside the window.
func (l *Lazy) slot(b int64) int {
	var d int64
	if l.order == Increasing {
		d = b - l.base
	} else {
		d = l.base - b
	}
	if d < 0 || d >= int64(l.numOpen) {
		return -1
	}
	return int(d)
}

// place inserts v into the bucket for id b (window or overflow).
//
// Updates that land before the bucket currently being processed are
// priority inversions (only possible for workloads that violate the
// paper's monotonicity contract, e.g. an inconsistent A* heuristic). They
// are routed to the overflow bucket: the next window advance re-buckets
// them at their true priority, so they are processed (possibly out of
// order) rather than lost.
func (l *Lazy) place(v uint32, b int64) {
	l.Inserts++
	if l.base == NullBkt {
		// Window was empty; open it at b.
		l.base, l.cur = b, 0
	}
	s := l.slot(b)
	if s >= 0 && (!l.started || s >= l.cur) {
		l.open[s] = append(l.open[s], v)
		return
	}
	if l.started && l.before(b, l.currentID()) {
		l.Inversions++
	}
	l.over = append(l.over, v)
}

// currentID returns the bucket id at the current window cursor.
func (l *Lazy) currentID() int64 {
	if l.order == Increasing {
		return l.base + int64(l.cur)
	}
	return l.base - int64(l.cur)
}

// SetBktFunc replaces the bucket function consulted by UpdateBuckets, Next,
// and window advances. Engines that restrict initial bucketing to a source
// set install the unrestricted function after construction.
func (l *Lazy) SetBktFunc(f BktFunc) { l.bktOf = f }

// UpdateBuckets re-buckets each vertex in ids according to bktOf. Callers
// must have deduplicated ids (at most one occurrence per vertex); stale
// copies from earlier rounds are tolerated and filtered on extraction.
func (l *Lazy) UpdateBuckets(ids []uint32) {
	for _, v := range ids {
		if b := l.bktOf(v); b != NullBkt {
			l.place(v, b)
		}
	}
}

// Next extracts the next non-empty bucket in priority order, filtering stale
// entries (vertices whose current bucket no longer matches). It returns the
// bucket id and its vertices, or (NullBkt, nil) when no buckets remain. The
// returned slice is owned by the caller.
func (l *Lazy) Next() (int64, []uint32) {
	l.started = true
	for {
		for ; l.cur < l.numOpen; l.cur++ {
			bid := l.currentID()
			bkt := l.open[l.cur]
			if len(bkt) == 0 {
				continue
			}
			l.open[l.cur] = nil
			// Filter stale entries and duplicate copies in place.
			l.curEpoch++
			live := bkt[:0]
			for _, v := range bkt {
				if l.bktOf(v) == bid && l.epoch[v] != l.curEpoch {
					l.epoch[v] = l.curEpoch
					live = append(live, v)
				}
			}
			if len(live) > 0 {
				return bid, live
			}
		}
		if !l.advanceWindow() {
			return NullBkt, nil
		}
	}
}

// advanceWindow re-buckets the overflow into a fresh window. It returns
// false when the structure is exhausted.
func (l *Lazy) advanceWindow() bool {
	if len(l.over) == 0 {
		return false
	}
	l.Rebuckets++
	// New base: the extreme live bucket id in the overflow. Duplicate
	// copies of a vertex are dropped here — they all map to the same
	// bucket now, so keeping one is enough.
	next := NullBkt
	l.curEpoch++
	live := l.over[:0]
	for _, v := range l.over {
		b := l.bktOf(v)
		if b == NullBkt || l.epoch[v] == l.curEpoch {
			continue
		}
		l.epoch[v] = l.curEpoch
		live = append(live, v)
		if next == NullBkt || l.before(b, next) {
			next = b
		}
	}
	over := live
	l.over = nil
	if next == NullBkt {
		return false
	}
	l.base, l.cur = next, 0
	for _, v := range over {
		b := l.bktOf(v)
		if s := l.slot(b); s >= 0 {
			l.open[s] = append(l.open[s], v)
		} else {
			l.over = append(l.over, v)
		}
	}
	return true
}

// CurrentBucket returns the id of the bucket most recently returned by Next
// (the bucket the engine is processing). Valid only between Next calls.
func (l *Lazy) CurrentBucket() int64 { return l.currentID() }
