package bucket

import "graphit/internal/parallel"

// Lazy is a Julienne-style bucket structure. Only NumOpen buckets are
// materialized at a time; vertices whose bucket lies outside the current
// window are kept in a single overflow bucket and re-bucketed when the
// window advances (paper §5.1). All updates happen through UpdateBuckets,
// once per vertex per round (the "lazy bucket update" approach, Figure 5).
//
// Lazy is not safe for concurrent use; the lazy engine performs its parallel
// work in the edge-map phase and calls UpdateBuckets from a single
// goroutine, exactly as the generated code in paper Figure 9(a) does after
// its parallel_for. SetParallel lets UpdateBuckets itself fan out internally
// for large update sets, but the call remains single-goroutine at the seam.
type Lazy struct {
	order   Order
	numOpen int
	bktOf   BktFunc

	open [][]uint32 // open[i] holds bucket id base ± i (sign per order)
	over []uint32   // overflow bucket
	base int64      // bucket id of open[0]
	cur  int        // index into open of the next candidate bucket

	// started is set by the first Next call; before that, updates may
	// freely re-bucket vertices anywhere (initialization order).
	started bool

	// selfFiltered declares that the consumer drops stale and duplicate
	// extracted ids itself, so Next returns raw slabs and no epoch plane is
	// ever allocated (see SetSelfFiltered).
	selfFiltered bool

	// A vertex can accumulate one stale copy per re-bucketing; epoch-based
	// deduplication guarantees each vertex appears at most once per
	// extracted bucket and once per redistributed overflow, even when old
	// copies collapse into the same bucket after a window advance. The
	// plane is allocated on first use, so self-filtered consumers never pay
	// for it.
	n        int
	epoch    []uint64
	curEpoch uint64

	// Slab free-list: backing arrays displaced by extraction, growth, and
	// window advances are parked here (len 0, capacity intact) and handed
	// back out instead of re-allocated, so the steady-state round loop
	// produces no bucket garbage. lastRet is the frontier most recently
	// returned by Next; it is recycled at the start of the following Next
	// call (the returned slice stays valid until then).
	free    [][]uint32
	lastRet []uint32

	// Parallel UpdateBuckets state (see SetParallel). ex == nil means
	// always serial.
	ex        *parallel.Executor
	parCutoff int
	parSlots  []int32 // per-id destination (window slot, numOpen=overflow, -1=skip)
	parCounts []int64 // per-(dest, worker) counts, dest-major
	parBase   []int64 // per-dest scatter base offset
	parInv    []int64 // per-worker inversion counts

	// Stats.
	Inserts    int64 // total bucket insertions (incl. overflow)
	Rebuckets  int64 // overflow re-distribution passes
	Inversions int64 // updates that landed before the current bucket
}

// maxFree bounds the slab free-list: enough for every window slot plus the
// overflow and a few frontiers in flight.
func (l *Lazy) maxFree() int { return l.numOpen + 8 }

// recycle parks a displaced backing array on the free list.
func (l *Lazy) recycle(s []uint32) {
	if cap(s) == 0 || len(l.free) >= l.maxFree() {
		return
	}
	l.free = append(l.free, s[:0])
}

// grabFit pops the smallest recycled slab with capacity >= need, or returns
// nil. Best-fit matters for the steady state: a first-fit policy lets tiny
// window slots squat on the big overflow slabs, forcing the overflow to
// re-grow (and re-allocate) every cycle.
func (l *Lazy) grabFit(need int) []uint32 {
	best := -1
	for i, s := range l.free {
		if cap(s) >= need && (best < 0 || cap(s) < cap(l.free[best])) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	s := l.free[best]
	last := len(l.free) - 1
	l.free[best] = l.free[last]
	l.free[last] = nil
	l.free = l.free[:last]
	return s
}

// appendSlab appends v to s, drawing backing storage from the free list and
// recycling arrays displaced by growth.
func (l *Lazy) appendSlab(s []uint32, v uint32) []uint32 {
	if len(s) == cap(s) {
		s = l.growSlab(s, 1)
		s[len(s)-1] = v
		return s
	}
	return append(s, v)
}

// growSlab extends s by cnt writable slots (contents unspecified), reusing
// free-list capacity and recycling the displaced array on reallocation.
func (l *Lazy) growSlab(s []uint32, cnt int) []uint32 {
	need := len(s) + cnt
	if cap(s) >= need {
		return s[:need]
	}
	if g := l.grabFit(need); g != nil {
		g = g[:need]
		copy(g, s)
		l.recycle(s)
		return g
	}
	newCap := need
	if c := 2 * cap(s); c > newCap {
		newCap = c
	}
	if newCap < 8 {
		newCap = 8
	}
	ns := make([]uint32, need, newCap)
	copy(ns, s)
	l.recycle(s)
	return ns
}

// NewLazy creates a lazy bucket structure over vertices [0, n) with the
// given extraction order and number of materialized buckets. Every vertex
// whose bktOf is non-null is placed in a bucket. numOpen <= 0 selects
// Julienne's default of 128 open buckets.
func NewLazy(n int, order Order, numOpen int, bktOf BktFunc) *Lazy {
	if numOpen <= 0 {
		numOpen = 128
	}
	l := &Lazy{
		order:   order,
		numOpen: numOpen,
		bktOf:   bktOf,
		open:    make([][]uint32, numOpen),
		n:       n,
	}
	// Find the initial window base: the extreme bucket value present.
	base := NullBkt
	for v := 0; v < n; v++ {
		b := bktOf(uint32(v))
		if b == NullBkt {
			continue
		}
		if base == NullBkt || l.before(b, base) {
			base = b
		}
	}
	l.base = base
	for v := 0; v < n; v++ {
		b := bktOf(uint32(v))
		if b == NullBkt {
			continue
		}
		l.place(uint32(v), b)
	}
	return l
}

// NewLazyFrom is NewLazy restricted to an initial active set: the window
// base is computed over active instead of a full [0, n) scan, and only the
// active vertices are placed. bktOf is the unrestricted bucket function,
// consulted by all later updates and extractions (so no SetBktFunc swap is
// needed when the initial frontier is a source subset).
func NewLazyFrom(n int, order Order, numOpen int, bktOf BktFunc, active []uint32) *Lazy {
	if numOpen <= 0 {
		numOpen = 128
	}
	l := &Lazy{
		order:   order,
		numOpen: numOpen,
		bktOf:   bktOf,
		open:    make([][]uint32, numOpen),
		n:       n,
	}
	base := NullBkt
	for _, v := range active {
		b := bktOf(v)
		if b == NullBkt {
			continue
		}
		if base == NullBkt || l.before(b, base) {
			base = b
		}
	}
	l.base = base
	for _, v := range active {
		if b := bktOf(v); b != NullBkt {
			l.place(v, b)
		}
	}
	return l
}

// before reports whether bucket a is processed strictly before bucket b.
func (l *Lazy) before(a, b int64) bool {
	if l.order == Increasing {
		return a < b
	}
	return a > b
}

// slot returns the window index of bucket b relative to base, or -1 if b is
// outside the window.
func (l *Lazy) slot(b int64) int {
	var d int64
	if l.order == Increasing {
		d = b - l.base
	} else {
		d = l.base - b
	}
	if d < 0 || d >= int64(l.numOpen) {
		return -1
	}
	return int(d)
}

// place inserts v into the bucket for id b (window or overflow).
//
// Updates that land before the bucket currently being processed are
// priority inversions (only possible for workloads that violate the
// paper's monotonicity contract, e.g. an inconsistent A* heuristic). They
// are routed to the overflow bucket: the next window advance re-buckets
// them at their true priority, so they are processed (possibly out of
// order) rather than lost.
func (l *Lazy) place(v uint32, b int64) {
	l.Inserts++
	if l.base == NullBkt {
		// Window was empty; open it at b.
		l.base, l.cur = b, 0
	}
	s := l.slot(b)
	if s >= 0 && (!l.started || s >= l.cur) {
		l.open[s] = l.appendSlab(l.open[s], v)
		return
	}
	if l.started && l.before(b, l.currentID()) {
		l.Inversions++
	}
	l.over = l.appendSlab(l.over, v)
}

// currentID returns the bucket id at the current window cursor.
func (l *Lazy) currentID() int64 {
	if l.order == Increasing {
		return l.base + int64(l.cur)
	}
	return l.base - int64(l.cur)
}

// SetBktFunc replaces the bucket function consulted by UpdateBuckets, Next,
// and window advances. Engines that restrict initial bucketing to a source
// set install the unrestricted function after construction.
func (l *Lazy) SetBktFunc(f BktFunc) { l.bktOf = f }

// Insert places v into the bucket for id b directly, bypassing the bulk
// UpdateBuckets seam. Single-goroutine engines that discover bucket moves
// during the sweep itself (the serial lane-batched fast path) insert at the
// point of the win instead of collecting a round's ids; duplicate and stale
// copies are tolerated and filtered on extraction, exactly as with
// UpdateBuckets. Not safe for concurrent use, like every Lazy method.
func (l *Lazy) Insert(v uint32, b int64) { l.place(v, b) }

// SetSelfFiltered declares that the consumer recognizes and skips stale or
// duplicate extracted ids itself (e.g. with a one-byte per-id queued mark),
// so Next returns raw slabs without the extraction-time epoch filter and
// window advances keep duplicate copies. This sheds the epoch plane and one
// pass over every extracted slab; a Next call may then return a frontier
// with nothing live in it, which such consumers treat as an empty round.
func (l *Lazy) SetSelfFiltered() { l.selfFiltered = true }

// ensureEpoch allocates the deduplication plane on first filtered use.
func (l *Lazy) ensureEpoch() {
	if l.epoch == nil {
		l.epoch = make([]uint64, l.n)
	}
}

// SetParallel lets UpdateBuckets fan out internally on ex for update sets of
// at least cutoff ids (cutoff <= 0 selects a default). The call itself must
// still come from a single goroutine, and bktOf must be safe for concurrent
// read-only calls (the engine's priority maps qualify: they are read with
// atomic loads). The parallel path places every id at exactly the position
// the serial loop would, so results and stats are bit-identical across
// worker counts.
func (l *Lazy) SetParallel(ex *parallel.Executor, cutoff int) {
	if cutoff <= 0 {
		cutoff = 8192
	}
	l.ex, l.parCutoff = ex, cutoff
}

// DedupeIDs compacts ids in place, keeping the first occurrence of each
// vertex, and returns the compacted slice. It consumes one dedup epoch;
// Next and window advances take fresh epochs, so interleaving is safe.
func (l *Lazy) DedupeIDs(ids []uint32) []uint32 {
	l.ensureEpoch()
	l.curEpoch++
	out := ids[:0]
	for _, v := range ids {
		if l.epoch[v] != l.curEpoch {
			l.epoch[v] = l.curEpoch
			out = append(out, v)
		}
	}
	return out
}

// UpdateBuckets re-buckets each vertex in ids according to bktOf. Callers
// must have deduplicated ids (at most one occurrence per vertex); stale
// copies from earlier rounds are tolerated and filtered on extraction.
//
// With SetParallel configured and a large enough update set, the placement
// runs as a two-pass counting sort over (window slot | overflow): a parallel
// classify pass counts per-(destination, worker) occupancy, a prefix sum
// turns the counts into scatter offsets, and a parallel scatter writes each
// id into pre-grown buckets. Workers own contiguous ascending id ranges
// (ForStatic), so the per-destination concatenation preserves the exact
// serial insertion order.
func (l *Lazy) UpdateBuckets(ids []uint32) {
	if l.ex == nil || l.ex.Workers() <= 1 || len(ids) < l.parCutoff || l.base == NullBkt {
		for _, v := range ids {
			if b := l.bktOf(v); b != NullBkt {
				l.place(v, b)
			}
		}
		return
	}
	l.updateBucketsParallel(ids)
}

// updateBucketsParallel is the fan-out path of UpdateBuckets. It requires an
// open window (l.base != NullBkt): the serial loop's open-window-on-first-
// placement transition is inherently sequential, so UpdateBuckets falls back
// to it when the window is closed.
func (l *Lazy) updateBucketsParallel(ids []uint32) {
	n := len(ids)
	w := l.ex.Workers()
	numDest := l.numOpen + 1 // window slots, then overflow
	if cap(l.parSlots) < n {
		l.parSlots = make([]int32, n)
	}
	slots := l.parSlots[:n]
	if cap(l.parCounts) < numDest*w {
		l.parCounts = make([]int64, numDest*w)
	}
	counts := l.parCounts[:numDest*w]
	for i := range counts {
		counts[i] = 0
	}
	if cap(l.parInv) < w {
		l.parInv = make([]int64, w)
	}
	inv := l.parInv[:w]
	for i := range inv {
		inv[i] = 0
	}
	curID := l.currentID()

	// Pass 1: classify every id to its destination and count per-(dest,
	// worker) occupancy. counts is dest-major so the prefix sum below walks
	// destinations in placement order.
	l.ex.ForStatic(n, func(lo, hi, worker int) {
		for i := lo; i < hi; i++ {
			v := ids[i]
			b := l.bktOf(v)
			if b == NullBkt {
				slots[i] = -1
				continue
			}
			d := l.numOpen
			if s := l.slot(b); s >= 0 && (!l.started || s >= l.cur) {
				d = s
			} else if l.started && l.before(b, curID) {
				inv[worker]++
			}
			slots[i] = int32(d)
			counts[d*w+worker]++
		}
	})

	// Exclusive scan: counts[d*w+worker] becomes that cell's start offset in
	// the global placement order (ascending dest, then worker).
	total := l.ex.PrefixSum(counts)
	if total == 0 {
		return
	}

	// Pre-grow each destination and record where its region starts.
	if cap(l.parBase) < numDest {
		l.parBase = make([]int64, numDest)
	}
	base := l.parBase[:numDest]
	for d := 0; d < numDest; d++ {
		dStart := counts[d*w]
		dEnd := total
		if d+1 < numDest {
			dEnd = counts[(d+1)*w]
		}
		cnt := int(dEnd - dStart)
		if cnt == 0 {
			continue
		}
		if d == l.numOpen {
			base[d] = int64(len(l.over)) - dStart
			l.over = l.growSlab(l.over, cnt)
		} else {
			base[d] = int64(len(l.open[d])) - dStart
			l.open[d] = l.growSlab(l.open[d], cnt)
		}
	}

	// Pass 2: scatter. Each (dest, worker) cell is advanced only by its
	// owning worker, and slab regions are disjoint, so no synchronization is
	// needed. Within a destination, worker slabs concatenate in ascending id
	// order — the serial order.
	l.ex.ForStatic(n, func(lo, hi, worker int) {
		for i := lo; i < hi; i++ {
			d := slots[i]
			if d < 0 {
				continue
			}
			cell := int(d)*w + worker
			pos := base[d] + counts[cell]
			counts[cell]++
			if int(d) == l.numOpen {
				l.over[pos] = ids[i]
			} else {
				l.open[d][pos] = ids[i]
			}
		}
	})

	l.Inserts += total
	for _, x := range inv {
		l.Inversions += x
	}
}

// Next extracts the next non-empty bucket in priority order, filtering stale
// entries (vertices whose current bucket no longer matches). It returns the
// bucket id and its vertices, or (NullBkt, nil) when no buckets remain. The
// returned slice is valid until the next Next call, which recycles its
// backing array into the slab free-list; callers that need the frontier
// longer must copy it.
func (l *Lazy) Next() (int64, []uint32) {
	l.started = true
	if l.lastRet != nil {
		l.recycle(l.lastRet)
		l.lastRet = nil
	}
	for {
		for ; l.cur < l.numOpen; l.cur++ {
			bid := l.currentID()
			bkt := l.open[l.cur]
			if len(bkt) == 0 {
				continue
			}
			l.open[l.cur] = nil
			if l.selfFiltered {
				l.lastRet = bkt
				return bid, bkt
			}
			// Filter stale entries and duplicate copies in place.
			l.ensureEpoch()
			l.curEpoch++
			live := bkt[:0]
			for _, v := range bkt {
				if l.bktOf(v) == bid && l.epoch[v] != l.curEpoch {
					l.epoch[v] = l.curEpoch
					live = append(live, v)
				}
			}
			if len(live) > 0 {
				l.lastRet = live
				return bid, live
			}
			// Every entry was stale; the slab is free immediately.
			l.recycle(live)
		}
		if !l.advanceWindow() {
			return NullBkt, nil
		}
	}
}

// advanceWindow re-buckets the overflow into a fresh window. It returns
// false when the structure is exhausted.
func (l *Lazy) advanceWindow() bool {
	if len(l.over) == 0 {
		return false
	}
	l.Rebuckets++
	// New base: the extreme live bucket id in the overflow. Duplicate
	// copies of a vertex are dropped here — they all map to the same
	// bucket now, so keeping one is enough. (Self-filtered consumers keep
	// duplicates; their consume check drops the extras.)
	next := NullBkt
	if !l.selfFiltered {
		l.ensureEpoch()
	}
	l.curEpoch++
	live := l.over[:0]
	for _, v := range l.over {
		b := l.bktOf(v)
		if b == NullBkt {
			continue
		}
		if !l.selfFiltered {
			if l.epoch[v] == l.curEpoch {
				continue
			}
			l.epoch[v] = l.curEpoch
		}
		live = append(live, v)
		if next == NullBkt || l.before(b, next) {
			next = b
		}
	}
	over := live
	l.over = nil
	if next == NullBkt {
		l.recycle(over)
		return false
	}
	l.base, l.cur = next, 0
	for _, v := range over {
		b := l.bktOf(v)
		if s := l.slot(b); s >= 0 {
			l.open[s] = l.appendSlab(l.open[s], v)
		} else {
			l.over = l.appendSlab(l.over, v)
		}
	}
	// The redistributed overflow's old backing array is free once every
	// vertex has been copied out.
	l.recycle(over)
	return true
}

// CurrentBucket returns the id of the bucket most recently returned by Next
// (the bucket the engine is processing). Valid only between Next calls.
func (l *Lazy) CurrentBucket() int64 { return l.currentID() }
