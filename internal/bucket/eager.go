package bucket

// LocalBins is one worker's thread-local bucket array for the eager engine,
// mirroring the `vector<vector<uint>> local_bins` of the paper's generated
// eager code (Figure 9(c)). Bins are indexed directly by bucket id (eager
// ordering is Increasing only, matching GAPBS) and grown on demand.
//
// A LocalBins is owned by exactly one worker; no synchronization is needed
// for Insert. The eager engine coordinates workers only at round barriers
// and when copying bins into the shared global frontier.
type LocalBins struct {
	bins [][]uint32
	// Inserts counts bucket insertions by this worker. Unlike the lazy
	// approach, the eager approach may insert the same vertex several times
	// per round (paper §3.2); this counter exposes that cost.
	Inserts int64
}

// Insert appends v to bin b, growing the bin array as needed.
func (lb *LocalBins) Insert(b int64, v uint32) {
	if b < 0 {
		b = 0
	}
	for int64(len(lb.bins)) <= b {
		lb.bins = append(lb.bins, nil)
	}
	lb.bins[b] = append(lb.bins[b], v)
	lb.Inserts++
}

// MinNonEmpty returns the smallest bin id >= from that is non-empty, or
// NullBkt if none. Each worker proposes this value at the end of a round and
// the engine takes the global minimum (paper Figure 6, line 8).
func (lb *LocalBins) MinNonEmpty(from int64) int64 {
	if from < 0 {
		from = 0
	}
	for b := from; b < int64(len(lb.bins)); b++ {
		if len(lb.bins[b]) > 0 {
			return b
		}
	}
	return NullBkt
}

// Take removes and returns bin b's contents (nil if empty or out of range).
func (lb *LocalBins) Take(b int64) []uint32 {
	if b < 0 || b >= int64(len(lb.bins)) {
		return nil
	}
	out := lb.bins[b]
	lb.bins[b] = nil
	return out
}

// Len returns the size of bin b without removing it.
func (lb *LocalBins) Len(b int64) int {
	if b < 0 || b >= int64(len(lb.bins)) {
		return 0
	}
	return len(lb.bins[b])
}

// Reset clears all bins (for structure reuse across runs).
func (lb *LocalBins) Reset() {
	for i := range lb.bins {
		lb.bins[i] = nil
	}
	lb.Inserts = 0
}
