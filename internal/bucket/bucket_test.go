package bucket

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestLazyPopsAreMonotone: with static priorities, Next returns buckets in
// strictly processing order and every vertex exactly once.
func TestLazyPopsAreMonotone(t *testing.T) {
	for _, order := range []Order{Increasing, Decreasing} {
		for _, numOpen := range []int{1, 4, 128} {
			prio := []int64{5, 3, 3, 9, 0, 7, NullBkt, 5}
			bktOf := func(v uint32) int64 { return prio[v] }
			l := NewLazy(len(prio), order, numOpen, bktOf)
			seen := map[uint32]bool{}
			last := int64(-1 << 62)
			if order == Decreasing {
				last = 1 << 62
			}
			for {
				bid, verts := l.Next()
				if bid == NullBkt {
					break
				}
				if order == Increasing && bid <= last {
					t.Fatalf("order=%v numOpen=%d: non-monotone pop %d after %d", order, numOpen, bid, last)
				}
				if order == Decreasing && bid >= last {
					t.Fatalf("order=%v numOpen=%d: non-monotone pop %d after %d", order, numOpen, bid, last)
				}
				last = bid
				for _, v := range verts {
					if seen[v] {
						t.Fatalf("vertex %d popped twice", v)
					}
					if prio[v] != bid {
						t.Fatalf("vertex %d popped in bucket %d with priority %d", v, bid, prio[v])
					}
					seen[v] = true
				}
			}
			if len(seen) != 7 { // vertex 6 has null priority
				t.Fatalf("popped %d vertices, want 7", len(seen))
			}
		}
	}
}

// TestLazyDynamicDecrease simulates a k-core-like workload: priorities only
// decrease, each change is reported via UpdateBuckets. Every vertex must be
// extracted exactly once at its final (current-at-pop) priority, regardless
// of window size.
func TestLazyDynamicDecrease(t *testing.T) {
	for _, numOpen := range []int{2, 8, 128} {
		rng := rand.New(rand.NewSource(7))
		n := 200
		prio := make([]int64, n)
		for v := range prio {
			prio[v] = int64(rng.Intn(50))
		}
		finalized := make([]bool, n)
		bktOf := func(v uint32) int64 {
			if finalized[v] {
				return NullBkt
			}
			return prio[v]
		}
		l := NewLazy(n, Increasing, numOpen, bktOf)
		popped := 0
		for {
			bid, verts := l.Next()
			if bid == NullBkt {
				break
			}
			var updated []uint32
			for _, v := range verts {
				finalized[v] = true
				popped++
			}
			// Randomly decrease some higher-priority vertices, clamped at
			// the current bucket (k-core's min_threshold).
			for i := 0; i < 20; i++ {
				u := uint32(rng.Intn(n))
				if !finalized[u] && prio[u] > bid {
					prio[u]--
					if prio[u] < bid {
						prio[u] = bid
					}
					updated = append(updated, u)
				}
			}
			l.UpdateBuckets(updated)
		}
		if popped != n {
			t.Fatalf("numOpen=%d: popped %d vertices, want %d", numOpen, popped, n)
		}
	}
}

// TestLazyNoDuplicateWithinPop: stale copies collapsing into one bucket
// after window advances must be deduplicated (the k-core bug fixed during
// development).
func TestLazyNoDuplicateWithinPop(t *testing.T) {
	prio := []int64{100}
	bktOf := func(v uint32) int64 { return prio[0] }
	l := NewLazy(1, Increasing, 2, bktOf)
	// Re-bucket the same vertex several times while it sits in overflow.
	for i := 0; i < 5; i++ {
		prio[0] = 100 - int64(i)
		l.UpdateBuckets([]uint32{0})
	}
	bid, verts := l.Next()
	if bid != 96 {
		t.Fatalf("popped bucket %d, want 96", bid)
	}
	if len(verts) != 1 {
		t.Fatalf("vertex popped %d times in one bucket", len(verts))
	}
}

// TestLazyInversionClamp: an update to a bucket before the current one is
// clamped into the current bucket and counted.
func TestLazyInversionClamp(t *testing.T) {
	prio := []int64{1, 5}
	bktOf := func(v uint32) int64 { return prio[v] }
	l := NewLazy(2, Increasing, 128, bktOf)
	bid, _ := l.Next()
	if bid != 1 {
		t.Fatalf("first bucket %d", bid)
	}
	// While processing bucket 1, vertex 1 inverts to priority 0.
	prio[1] = 0
	l.UpdateBuckets([]uint32{1})
	if l.Inversions != 1 {
		t.Fatalf("Inversions = %d, want 1", l.Inversions)
	}
	// The inverted vertex must not be lost: the overflow re-advance
	// recovers it at its true priority (out of order, but processed).
	bid2, verts := l.Next()
	if bid2 != 0 || len(verts) != 1 || verts[0] != 1 {
		t.Fatalf("inverted pop = (%d, %v), want (0, [1])", bid2, verts)
	}
}

// TestLazyPropertyRandomWorkload: quick-checked version of the dynamic
// decrease test with random window sizes.
func TestLazyPropertyRandomWorkload(t *testing.T) {
	f := func(seed int64, windowSel uint8) bool {
		numOpen := []int{1, 3, 16, 200}[int(windowSel)%4]
		rng := rand.New(rand.NewSource(seed))
		n := 60
		prio := make([]int64, n)
		for v := range prio {
			prio[v] = int64(rng.Intn(30))
		}
		final := make([]bool, n)
		bktOf := func(v uint32) int64 {
			if final[v] {
				return NullBkt
			}
			return prio[v]
		}
		l := NewLazy(n, Increasing, numOpen, bktOf)
		popped := 0
		last := int64(-1)
		for {
			bid, verts := l.Next()
			if bid == NullBkt {
				break
			}
			if bid < last {
				return false
			}
			last = bid
			var updated []uint32
			for _, v := range verts {
				if final[v] || prio[v] != bid {
					return false
				}
				final[v] = true
				popped++
			}
			for i := 0; i < 10; i++ {
				u := uint32(rng.Intn(n))
				if !final[u] && prio[u] > bid {
					prio[u] = bid + int64(rng.Intn(int(prio[u]-bid)+1))
					updated = append(updated, u)
				}
			}
			l.UpdateBuckets(updated)
		}
		return popped == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLocalBinsInsertTakeMin(t *testing.T) {
	lb := &LocalBins{}
	lb.Insert(5, 50)
	lb.Insert(2, 20)
	lb.Insert(5, 51)
	lb.Insert(-3, 7) // clamped to bin 0
	if got := lb.MinNonEmpty(0); got != 0 {
		t.Fatalf("MinNonEmpty(0) = %d", got)
	}
	if got := lb.MinNonEmpty(1); got != 2 {
		t.Fatalf("MinNonEmpty(1) = %d", got)
	}
	if vs := lb.Take(2); len(vs) != 1 || vs[0] != 20 {
		t.Fatalf("Take(2) = %v", vs)
	}
	if lb.Len(2) != 0 {
		t.Fatal("Take did not clear the bin")
	}
	if got := lb.MinNonEmpty(1); got != 5 {
		t.Fatalf("MinNonEmpty(1) after take = %d", got)
	}
	if vs := lb.Take(5); len(vs) != 2 {
		t.Fatalf("Take(5) = %v", vs)
	}
	if got := lb.MinNonEmpty(1); got != NullBkt {
		t.Fatalf("MinNonEmpty on empty = %d", got)
	}
	if lb.Inserts != 4 {
		t.Fatalf("Inserts = %d", lb.Inserts)
	}
	lb.Reset()
	if lb.Inserts != 0 || lb.MinNonEmpty(0) != NullBkt {
		t.Fatal("Reset incomplete")
	}
}

func TestLocalBinsTakeOutOfRange(t *testing.T) {
	lb := &LocalBins{}
	if vs := lb.Take(10); vs != nil {
		t.Fatal("Take on empty bins should be nil")
	}
	if lb.Len(99) != 0 {
		t.Fatal("Len out of range should be 0")
	}
}

func TestLazyEmptyQueue(t *testing.T) {
	l := NewLazy(5, Increasing, 4, func(uint32) int64 { return NullBkt })
	if bid, _ := l.Next(); bid != NullBkt {
		t.Fatal("empty queue should be finished")
	}
	// Late insertion after an empty start must still work.
	prio := int64(3)
	l.SetBktFunc(func(v uint32) int64 {
		if v == 2 {
			return prio
		}
		return NullBkt
	})
	l.UpdateBuckets([]uint32{2})
	bid, verts := l.Next()
	if bid != 3 || len(verts) != 1 || verts[0] != 2 {
		t.Fatalf("late insert pop = (%d, %v)", bid, verts)
	}
}

// TestLazyFromActiveSubset: NewLazyFrom seeds the queue from an explicit
// active set — vertices outside it are never placed, even when bktOf gives
// them a live bucket, and the base window starts at the subset's minimum.
func TestLazyFromActiveSubset(t *testing.T) {
	prio := []int64{5, 3, 8, 9, 0, 7, 2, 5}
	bktOf := func(v uint32) int64 { return prio[v] }
	l := NewLazyFrom(len(prio), Increasing, 4, bktOf, []uint32{1, 2, 5})
	var popped []uint32
	last := int64(-1 << 62)
	for {
		bid, verts := l.Next()
		if bid == NullBkt {
			break
		}
		if bid <= last {
			t.Fatalf("non-monotone pop %d after %d", bid, last)
		}
		last = bid
		for _, v := range verts {
			if prio[v] != bid {
				t.Fatalf("vertex %d popped in bucket %d, priority %d", v, bid, prio[v])
			}
			popped = append(popped, v)
		}
	}
	if len(popped) != 3 {
		t.Fatalf("popped %v, want exactly the active set {1, 2, 5}", popped)
	}
	seen := map[uint32]bool{}
	for _, v := range popped {
		seen[v] = true
	}
	if !seen[1] || !seen[2] || !seen[5] {
		t.Fatalf("popped %v, want {1, 2, 5}", popped)
	}

	// An all-null active set behaves like an empty queue.
	empty := NewLazyFrom(4, Increasing, 4, func(uint32) int64 { return NullBkt }, []uint32{0, 3})
	if bid, _ := empty.Next(); bid != NullBkt {
		t.Fatal("null-priority active set should be finished immediately")
	}
}

// TestLazyFromMatchesNewLazy: with the full vertex range as the active set,
// NewLazyFrom pops exactly what NewLazy pops.
func TestLazyFromMatchesNewLazy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 64
	prio := make([]int64, n)
	all := make([]uint32, n)
	for i := range prio {
		prio[i] = int64(rng.Intn(40))
		all[i] = uint32(i)
	}
	bktOf := func(v uint32) int64 { return prio[v] }
	a := NewLazy(n, Increasing, 8, bktOf)
	b := NewLazyFrom(n, Increasing, 8, bktOf, all)
	for {
		bidA, vertsA := a.Next()
		bidB, vertsB := b.Next()
		if bidA != bidB || len(vertsA) != len(vertsB) {
			t.Fatalf("divergence: (%d, %d verts) vs (%d, %d verts)", bidA, len(vertsA), bidB, len(vertsB))
		}
		if bidA == NullBkt {
			return
		}
	}
}

// TestLazyPropertyDecreasingWorkload is the SetCover-shaped mirror of the
// increasing property test: max-order extraction with priorities that only
// decrease (re-bucketed after each pop), every set leaving the queue
// exactly once per its final state.
func TestLazyPropertyDecreasingWorkload(t *testing.T) {
	f := func(seed int64, windowSel uint8) bool {
		numOpen := []int{1, 4, 32, 256}[int(windowSel)%4]
		rng := rand.New(rand.NewSource(seed))
		n := 50
		prio := make([]int64, n)
		for v := range prio {
			prio[v] = int64(1 + rng.Intn(40))
		}
		done := make([]bool, n)
		bktOf := func(v uint32) int64 {
			if done[v] || prio[v] <= 0 {
				return NullBkt
			}
			return prio[v]
		}
		l := NewLazy(n, Decreasing, numOpen, bktOf)
		last := int64(1 << 62)
		processed := 0
		for {
			bid, verts := l.Next()
			if bid == NullBkt {
				break
			}
			if bid > last {
				return false // max-order violated
			}
			last = bid
			var updated []uint32
			for _, v := range verts {
				if done[v] || prio[v] != bid {
					return false
				}
				// A set either commits (leaves) or drops to a lower value.
				if rng.Intn(2) == 0 {
					done[v] = true
					processed++
				} else {
					prio[v] = int64(rng.Intn(int(bid)))
					if prio[v] > 0 {
						updated = append(updated, v)
					} else {
						done[v] = true
						processed++
					}
				}
			}
			l.UpdateBuckets(updated)
		}
		return processed == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
