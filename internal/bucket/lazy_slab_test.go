package bucket

import (
	"math/rand"
	"testing"

	"graphit/internal/parallel"
)

// TestLazySteadyStateAllocs: once the slab free-list is warm, a full
// update → extract cycle (including window advances through the overflow
// bucket) performs zero heap allocation.
func TestLazySteadyStateAllocs(t *testing.T) {
	const n = 256
	prio := make([]int64, n)
	l := NewLazy(n, Increasing, 8, func(v uint32) int64 { return prio[v] })
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(i)
	}
	step := func(base int64) {
		// 32 distinct buckets against an 8-wide window forces overflow
		// traffic and window advances every cycle.
		for i := range prio {
			prio[i] = base + int64(i%32)
		}
		l.UpdateBuckets(ids)
		for {
			if bid, _ := l.Next(); bid == NullBkt {
				break
			}
		}
	}
	for r := 0; r < 8; r++ {
		step(int64(r * 40))
	}
	if allocs := testing.AllocsPerRun(50, func() { step(1000) }); allocs != 0 {
		t.Errorf("steady-state update/extract cycle allocates %.0f times per run, want 0", allocs)
	}
}

// TestNextFrontierValidUntilNextNext: the slice returned by Next must stay
// intact across UpdateBuckets calls (which grab recycled slabs) and only be
// invalidated by the following Next.
func TestNextFrontierValidUntilNextNext(t *testing.T) {
	const n = 64
	prio := make([]int64, n)
	for i := range prio {
		prio[i] = int64(i % 4)
	}
	l := NewLazy(n, Increasing, 4, func(v uint32) int64 { return prio[v] })
	bid, verts := l.Next()
	if bid == NullBkt {
		t.Fatal("expected a first bucket")
	}
	want := append([]uint32(nil), verts...)
	// Re-bucket a disjoint set of vertices; slab recycling must not hand the
	// held frontier's backing array to these inserts.
	var moved []uint32
	for v := 0; v < n; v++ {
		if prio[v] == 3 {
			prio[v] = 2
			moved = append(moved, uint32(v))
		}
	}
	l.UpdateBuckets(moved)
	for i, v := range verts {
		if v != want[i] {
			t.Fatalf("frontier clobbered at %d: got %d want %d", i, v, want[i])
		}
	}
}

// TestDedupeIDs: first occurrence wins, order preserved, in-place.
func TestDedupeIDs(t *testing.T) {
	l := NewLazy(10, Increasing, 4, func(v uint32) int64 { return int64(v) })
	ids := []uint32{3, 1, 3, 7, 1, 1, 9, 3}
	got := l.DedupeIDs(ids)
	want := []uint32{3, 1, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("DedupeIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DedupeIDs = %v, want %v", got, want)
		}
	}
	if &got[0] != &ids[0] {
		t.Error("DedupeIDs must compact in place")
	}
	// A following extraction's epoch filter must be unaffected.
	if bid, verts := l.Next(); bid != 0 || len(verts) != 1 || verts[0] != 0 {
		t.Fatalf("Next after DedupeIDs = %d %v", bid, verts)
	}
}

// TestUpdateBucketsParallelMatchesSerial: the parallel counting-sort path
// must place every id at exactly the position the serial loop would —
// identical extraction order and identical stats — across interleaved
// updates, inversions, and window advances.
func TestUpdateBucketsParallelMatchesSerial(t *testing.T) {
	ex := parallel.NewExecutor(4)
	defer ex.Close()
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(800)
		prio := make([]int64, n)
		for i := range prio {
			prio[i] = int64(rng.Intn(60))
		}
		bktOf := func(v uint32) int64 { return prio[v] }
		ser := NewLazy(n, Increasing, 8, bktOf)
		par := NewLazy(n, Increasing, 8, bktOf)
		par.SetParallel(ex, 1) // force the parallel path for every update

		for round := 0; round < 10; round++ {
			sbid, sverts := ser.Next()
			pbid, pverts := par.Next()
			if sbid != pbid {
				t.Fatalf("seed %d round %d: bucket %d (serial) vs %d (parallel)", seed, round, sbid, pbid)
			}
			if len(sverts) != len(pverts) {
				t.Fatalf("seed %d round %d: frontier %v (serial) vs %v (parallel)", seed, round, sverts, pverts)
			}
			for i := range sverts {
				if sverts[i] != pverts[i] {
					t.Fatalf("seed %d round %d index %d: %d (serial) vs %d (parallel) — order must match exactly",
						seed, round, i, sverts[i], pverts[i])
				}
			}
			if sbid == NullBkt {
				break
			}
			// Re-prioritize the popped frontier plus a random sample —
			// lowering some priorities below the cursor provokes inversions
			// and overflow traffic on both sides.
			seen := make(map[uint32]bool)
			var upd []uint32
			touch := func(v uint32, p int64) {
				prio[v] = p
				if !seen[v] {
					seen[v] = true
					upd = append(upd, v)
				}
			}
			for _, v := range sverts {
				touch(v, int64(rng.Intn(60)))
			}
			for k := 0; k < n/4; k++ {
				touch(uint32(rng.Intn(n)), int64(rng.Intn(80)))
			}
			ser.UpdateBuckets(upd)
			par.UpdateBuckets(upd)
		}
		if ser.Inserts != par.Inserts || ser.Rebuckets != par.Rebuckets || ser.Inversions != par.Inversions {
			t.Fatalf("seed %d: stats diverge: serial {Inserts %d Rebuckets %d Inversions %d} vs parallel {%d %d %d}",
				seed, ser.Inserts, ser.Rebuckets, ser.Inversions, par.Inserts, par.Rebuckets, par.Inversions)
		}
	}
}
