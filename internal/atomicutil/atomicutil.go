// Package atomicutil provides the lock-free scalar primitives that the
// paper's generated code relies on: atomic write-min / write-max / add on
// slice elements, and compare-and-swap based deduplication flags.
//
// These correspond to the writeMin / CAS idioms in Julienne's and GAPBS's
// hand-written update functions (paper Figure 2) that the GraphIt compiler
// inserts automatically (paper §5.1).
package atomicutil

import "sync/atomic"

// WriteMin atomically sets *p = min(*p, v) and reports whether v became the
// new value (i.e. the write "won"). This is the atomic relaxation primitive
// of ∆-stepping: dist[d] = min(dist[d], dist[s]+w).
func WriteMin(p *int64, v int64) bool {
	for {
		old := atomic.LoadInt64(p)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapInt64(p, old, v) {
			return true
		}
	}
}

// WriteMax atomically sets *p = max(*p, v) and reports whether v won.
func WriteMax(p *int64, v int64) bool {
	for {
		old := atomic.LoadInt64(p)
		if v <= old {
			return false
		}
		if atomic.CompareAndSwapInt64(p, old, v) {
			return true
		}
	}
}

// AddClamped atomically adds delta to *p with the result clamped at floor,
// and reports the new value and whether it changed. This implements
// updatePrioritySum with a minimum threshold (paper Table 1): e.g. k-core
// decrements a vertex's induced degree but not below the current core k.
func AddClamped(p *int64, delta, floor int64) (int64, bool) {
	for {
		old := atomic.LoadInt64(p)
		next := old + delta
		if next < floor {
			next = floor
		}
		if next == old {
			return old, false
		}
		if atomic.CompareAndSwapInt64(p, old, next) {
			return next, true
		}
	}
}

// Load is an atomic load of a slice element (by pointer).
func Load(p *int64) int64 { return atomic.LoadInt64(p) }

// Store is an atomic store of a slice element (by pointer).
func Store(p *int64, v int64) { atomic.StoreInt64(p, v) }

// LoadU64 is an atomic load of a uint64 slice element (by pointer).
func LoadU64(p *uint64) uint64 { return atomic.LoadUint64(p) }

// SwapU64 atomically writes *p = v and returns the previous value.
func SwapU64(p *uint64, v uint64) uint64 { return atomic.SwapUint64(p, v) }

// OrU64 atomically sets *p |= mask. CAS-based (atomic.OrUint64 needs a
// newer toolchain); the early-out covers the common already-set case
// without issuing a write.
func OrU64(p *uint64, mask uint64) {
	for {
		old := atomic.LoadUint64(p)
		if old&mask == mask {
			return
		}
		if atomic.CompareAndSwapUint64(p, old, old|mask) {
			return
		}
	}
}

// Flags is a set of CAS-guarded deduplication flags, one byte per vertex,
// used to guarantee a vertex enters a per-round output buffer at most once
// (paper Figure 9(a), line 21). Reset between rounds with ResetList.
type Flags struct {
	bits []uint32
}

// NewFlags returns a flag set for n items, all clear.
func NewFlags(n int) *Flags {
	return &Flags{bits: make([]uint32, n)}
}

// TrySet atomically sets flag i and reports whether this call was the one
// that set it (false if it was already set).
func (f *Flags) TrySet(i uint32) bool {
	return atomic.CompareAndSwapUint32(&f.bits[i], 0, 1)
}

// TrySetUnsync is TrySet without the CAS, for phases that run on a single
// worker (no concurrent setters). Mixing it with concurrent TrySet calls on
// the same flag set is a data race.
func (f *Flags) TrySetUnsync(i uint32) bool {
	if f.bits[i] != 0 {
		return false
	}
	f.bits[i] = 1
	return true
}

// IsSet reports whether flag i is set.
func (f *Flags) IsSet(i uint32) bool {
	return atomic.LoadUint32(&f.bits[i]) != 0
}

// Clear clears flag i.
func (f *Flags) Clear(i uint32) {
	atomic.StoreUint32(&f.bits[i], 0)
}

// ResetList clears exactly the flags named in ids: O(|ids|) instead of O(n),
// the standard trick for per-round dedup on sparse frontiers.
func (f *Flags) ResetList(ids []uint32) {
	for _, v := range ids {
		atomic.StoreUint32(&f.bits[v], 0)
	}
}

// Len returns the capacity of the flag set.
func (f *Flags) Len() int { return len(f.bits) }
