package atomicutil

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestWriteMinSequential(t *testing.T) {
	x := int64(10)
	if !WriteMin(&x, 5) || x != 5 {
		t.Fatalf("WriteMin(10, 5) failed: x=%d", x)
	}
	if WriteMin(&x, 7) || x != 5 {
		t.Fatalf("WriteMin must not raise: x=%d", x)
	}
	if WriteMin(&x, 5) {
		t.Fatal("equal value must not win")
	}
}

func TestWriteMaxSequential(t *testing.T) {
	x := int64(10)
	if !WriteMax(&x, 15) || x != 15 {
		t.Fatalf("WriteMax(10, 15) failed: x=%d", x)
	}
	if WriteMax(&x, 7) || x != 15 {
		t.Fatalf("WriteMax must not lower: x=%d", x)
	}
}

// TestWriteMinConcurrent: under contention, the final value is the global
// minimum and exactly the writes that lowered the value report success.
func TestWriteMinConcurrent(t *testing.T) {
	x := int64(1 << 40)
	const workers = 8
	const perWorker = 1000
	var wins int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < perWorker; i++ {
				v := int64((w*perWorker+i)*7919%100000 + 1)
				if WriteMin(&x, v) {
					local++
				}
			}
			mu.Lock()
			wins += local
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	min := int64(1 << 40)
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			v := int64((w*perWorker+i)*7919%100000 + 1)
			if v < min {
				min = v
			}
		}
	}
	if x != min {
		t.Fatalf("final = %d, want global min %d", x, min)
	}
	if wins == 0 {
		t.Fatal("no write ever won")
	}
}

func TestAddClampedProperties(t *testing.T) {
	f := func(start, delta, floor int64) bool {
		// Constrain to avoid overflow.
		start %= 1 << 30
		delta %= 1 << 20
		floor %= 1 << 30
		x := start
		next, changed := AddClamped(&x, delta, floor)
		want := start + delta
		if want < floor {
			want = floor
		}
		return x == want && next == want && changed == (want != start)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAddClampedConcurrentNeverBelowFloor(t *testing.T) {
	x := int64(100)
	const floor = 42
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				AddClamped(&x, -1, floor)
			}
		}()
	}
	wg.Wait()
	if x != floor {
		t.Fatalf("x = %d, want clamped at %d", x, floor)
	}
}

func TestFlagsTrySetExactlyOnce(t *testing.T) {
	f := NewFlags(100)
	const workers = 8
	winners := make([][]uint32, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for v := uint32(0); v < 100; v++ {
				if f.TrySet(v) {
					winners[w] = append(winners[w], v)
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, ws := range winners {
		total += len(ws)
	}
	if total != 100 {
		t.Fatalf("%d wins across workers, want exactly 100", total)
	}
	for v := uint32(0); v < 100; v++ {
		if !f.IsSet(v) {
			t.Fatalf("flag %d not set", v)
		}
	}
}

func TestFlagsResetList(t *testing.T) {
	f := NewFlags(10)
	for v := uint32(0); v < 10; v++ {
		f.TrySet(v)
	}
	f.ResetList([]uint32{1, 3, 5})
	for v := uint32(0); v < 10; v++ {
		want := v != 1 && v != 3 && v != 5
		if f.IsSet(v) != want {
			t.Fatalf("flag %d: set=%v, want %v", v, f.IsSet(v), want)
		}
	}
	if f.Len() != 10 {
		t.Fatalf("Len = %d", f.Len())
	}
}
