package server

import (
	"strings"
	"testing"
	"unicode/utf8"

	"graphit/internal/livegraph"
)

// FuzzDecodeUpdateBody hammers the /update batch decoder with hostile
// bodies. The decoder is the only code between a network client and
// livegraph's op validation, so it must never panic, and every accepted
// batch must be internally consistent: same op count as the wire batch,
// only known op kinds, no negative weights (the ordered engines assume
// non-negative weights throughout).
func FuzzDecodeUpdateBody(f *testing.F) {
	seeds := []string{
		`{"graph":"road","ops":[{"op":"add","src":0,"dst":5,"w":3}]}`,
		`{"graph":"road","ops":[{"op":"remove","src":0,"dst":5},{"op":"reweight","src":1,"dst":2,"w":9}]}`,
		`{"graph":"","ops":[{"op":"add","src":0,"dst":5,"w":3}]}`,
		`{"graph":"road","ops":[]}`,
		`{"graph":"road","ops":[{"op":"upsert","src":0,"dst":5}]}`,
		`{"graph":"road","ops":[{"op":"add","src":0,"dst":5,"w":-1}]}`,
		`{"graph":"road","ops":[{"op":"add","src":4294967295,"dst":4294967295,"w":2147483647}]}`,
		`{"graph":"road","ops":[{"op":"add","src":0,"dst":5,"w":3}]} trailing`,
		`{"graph":"road","opz":[{"op":"add","src":0,"dst":5,"w":3}]}`,
		`{"graph":"road","ops":[{"op":"add","src":-1,"dst":5,"w":3}]}`,
		`{"graph":"road","ops":[{"op":"add","src":0.5,"dst":5,"w":3}]}`,
		`{"graph":"road","ops":null}`,
		`null`,
		``,
		`[`,
		"{\"graph\":\"\x00\",\"ops\":[{\"op\":\"add\"}]}",
		strings.Repeat(`{"graph":"r","ops":[`, 64),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, ops, err := decodeUpdateBody(data)
		if err != nil {
			if len(ops) != 0 {
				t.Fatalf("decoder returned ops alongside error %v", err)
			}
			return
		}
		if req.Graph == "" {
			t.Fatal("accepted a batch with no graph name")
		}
		if len(ops) == 0 || len(ops) != len(req.Ops) {
			t.Fatalf("accepted batch has %d decoded ops for %d wire ops", len(ops), len(req.Ops))
		}
		for i, op := range ops {
			switch op.Kind {
			case livegraph.OpAdd, livegraph.OpRemove, livegraph.OpReweight:
			default:
				t.Fatalf("op %d: decoder produced unknown kind %d", i, op.Kind)
			}
			if op.W < 0 {
				t.Fatalf("op %d: decoder accepted negative weight %d", i, op.W)
			}
		}
		if !utf8.ValidString(req.Graph) {
			// encoding/json replaces invalid UTF-8 with U+FFFD, so an
			// accepted graph name is always valid UTF-8; a regression here
			// means raw client bytes reach error messages and logs.
			t.Fatalf("accepted graph name is not valid UTF-8: %q", req.Graph)
		}
	})
}
