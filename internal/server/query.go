package server

import (
	"graphit"
	"graphit/algo"
	"graphit/internal/qexec"
)

// Query is the JSON body of POST /query — a pure wire shape; it maps 1:1
// onto qexec.Request, where validation and canonicalization happen.
type Query struct {
	// Algo is the algorithm name (see algo.Names).
	Algo string `json:"algo"`
	// Graph names one of the graphs the server loaded at startup.
	Graph string `json:"graph"`
	// Src / Dst are the source and (for ppsp/astar) destination vertices.
	Src uint32 `json:"src"`
	Dst uint32 `json:"dst"`
	// Strategy / Direction / Delta / NumBuckets select the primary
	// schedule; empty/zero uses the server defaults.
	Strategy   string `json:"strategy,omitempty"`
	Direction  string `json:"direction,omitempty"`
	Delta      int64  `json:"delta,omitempty"`
	NumBuckets int    `json:"num_buckets,omitempty"`
	// BudgetMS is the client's wall-clock budget in milliseconds, clamped
	// to the server's [min, max] range; 0 uses the server default.
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// Vertices asks for the result values of specific vertices.
	Vertices []uint32 `json:"vertices,omitempty"`
}

// request converts the wire shape to the pipeline's transport-agnostic one.
func (q *Query) request() qexec.Request {
	return qexec.Request{
		Algo:       q.Algo,
		Graph:      q.Graph,
		Src:        q.Src,
		Dst:        q.Dst,
		Strategy:   q.Strategy,
		Direction:  q.Direction,
		Delta:      q.Delta,
		NumBuckets: q.NumBuckets,
		BudgetMS:   q.BudgetMS,
		Vertices:   q.Vertices,
	}
}

// Response is the JSON body of a /query reply (success or failure). The
// result summary is the canonical algo.Summary, embedded: its result-kind
// fields are pointers, so a legitimate zero (reached=0, max_value=0,
// cover_size=0) is reported explicitly rather than vanishing under
// omitempty.
type Response struct {
	Algo     string `json:"algo"`
	Graph    string `json:"graph"`
	Strategy string `json:"strategy"`
	// Epoch is the graph epoch the answer was computed against; a client
	// that just POSTed an update sees its batch reflected in any answer
	// whose epoch is >= the epoch the update returned.
	Epoch uint64 `json:"epoch"`
	// Fallback reports that the answer was produced by the safe fallback
	// schedule — either transparently after a primary-run fault, or
	// directly because the (algo, strategy) breaker was open.
	Fallback bool `json:"fallback"`
	// Cached / Coalesced report that the answer was served from the result
	// cache, or by sharing another in-flight identical query's engine run.
	Cached    bool `json:"cached,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
	// Batched reports that the answer came through the batch-coalescing
	// stage; BatchLanes is the lane count of the shared multi-source run
	// that produced it (absent when the window closed solo).
	Batched    bool `json:"batched,omitempty"`
	BatchLanes int  `json:"batch_lanes,omitempty"`
	// Breaker is the (algo, strategy) breaker's state after this request.
	Breaker string `json:"breaker"`
	// FaultKind is the primary run's contained fault ("panic" or "stuck"),
	// when one occurred.
	FaultKind string         `json:"fault_kind,omitempty"`
	Stats     *graphit.Stats `json:"stats,omitempty"`
	ElapsedMS int64          `json:"elapsed_ms"`

	// Result summary, by result kind (flattened into the object).
	algo.Summary

	Error string `json:"error,omitempty"`
}

// newResponse renders a pipeline Outcome as the wire shape.
func newResponse(out *qexec.Outcome) *Response {
	resp := &Response{
		Algo:       out.Algo,
		Graph:      out.Graph,
		Strategy:   out.Strategy,
		Epoch:      out.Epoch,
		Fallback:   out.Fallback,
		Cached:     out.Cached,
		Coalesced:  out.Coalesced,
		Batched:    out.Batched,
		BatchLanes: out.BatchLanes,
		Breaker:    out.Breaker,
		FaultKind:  out.FaultKind,
		Stats:      out.Stats,
		Summary:    out.Summary,
	}
	if out.Err != nil {
		resp.Error = out.Err.Error()
	}
	return resp
}

// httpStatus maps the pipeline's outcome codes onto HTTP.
func httpStatus(c qexec.Code) int {
	switch c {
	case qexec.CodeOK:
		return 200
	case qexec.CodeBadRequest:
		return 400
	case qexec.CodeShed:
		return 429
	case qexec.CodeDraining:
		return 503
	case qexec.CodeClientGone:
		return 499 // client closed request (nginx convention)
	case qexec.CodeBudget:
		return 504
	default: // qexec.CodeFault
		return 500
	}
}
