package server

import (
	"context"
	"fmt"
	"runtime/debug"
	"strconv"
	"time"

	"graphit"
	"graphit/algo"
	"graphit/internal/cliutil"
)

// Query is the JSON body of POST /query. Schedule fields are optional and
// by-name; an unknown name is rejected before admission with the shared
// valid-options error (cliutil).
type Query struct {
	// Algo is the algorithm name (see algo.Names).
	Algo string `json:"algo"`
	// Graph names one of the graphs the server loaded at startup.
	Graph string `json:"graph"`
	// Src / Dst are the source and (for ppsp/astar) destination vertices.
	Src uint32 `json:"src"`
	Dst uint32 `json:"dst"`
	// Strategy / Direction / Delta / NumBuckets select the primary
	// schedule; empty/zero uses the server defaults.
	Strategy   string `json:"strategy,omitempty"`
	Direction  string `json:"direction,omitempty"`
	Delta      int64  `json:"delta,omitempty"`
	NumBuckets int    `json:"num_buckets,omitempty"`
	// BudgetMS is the client's wall-clock budget in milliseconds, clamped
	// to the server's [min, max] range; 0 uses the server default. The
	// budget maps to a context deadline plus the engine's round watchdog,
	// so a stalled round cannot pin a run slot past it.
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// Vertices asks for the result values of specific vertices.
	Vertices []uint32 `json:"vertices,omitempty"`
}

// Response is the JSON body of a /query reply (success or failure).
type Response struct {
	Algo     string `json:"algo"`
	Graph    string `json:"graph"`
	Strategy string `json:"strategy"`
	// Fallback reports that the answer was produced by the safe fallback
	// schedule — either transparently after a primary-run fault, or
	// directly because the (algo, strategy) breaker was open.
	Fallback bool `json:"fallback"`
	// Breaker is the (algo, strategy) breaker's state after this request.
	Breaker string `json:"breaker"`
	// FaultKind is the primary run's contained fault ("panic" or "stuck"),
	// when one occurred.
	FaultKind string         `json:"fault_kind,omitempty"`
	Stats     *graphit.Stats `json:"stats,omitempty"`
	ElapsedMS int64          `json:"elapsed_ms"`

	// Result summary, by result kind.
	Reached   int              `json:"reached,omitempty"`
	MaxValue  int64            `json:"max_value,omitempty"`
	PairDist  *int64           `json:"pair_dist,omitempty"`
	CoverSize int              `json:"cover_size,omitempty"`
	Values    map[string]int64 `json:"values,omitempty"`

	Error string `json:"error,omitempty"`
}

// validate resolves the query against the registry and the loaded graphs,
// building the primary schedule. All failures here are request errors
// (HTTP 400): they never reach the engine or the breaker.
func (s *Server) validate(q *Query) (*algo.Spec, *graphit.Graph, graphit.Schedule, cliutil.ScheduleParams, error) {
	var zero graphit.Schedule
	sp, err := cliutil.ParseAlgo(q.Algo)
	if err != nil {
		return nil, nil, zero, cliutil.ScheduleParams{}, err
	}
	g, ok := s.cfg.Graphs[q.Graph]
	if !ok {
		return nil, nil, zero, cliutil.ScheduleParams{}, fmt.Errorf("unknown graph %q (loaded: %s)", q.Graph, s.graphNames())
	}
	if err := sp.CheckGraph(g); err != nil {
		return nil, nil, zero, cliutil.ScheduleParams{}, err
	}
	n := uint32(g.NumVertices())
	if q.Src >= n {
		return nil, nil, zero, cliutil.ScheduleParams{}, fmt.Errorf("src %d out of range (graph has %d vertices)", q.Src, n)
	}
	if sp.NeedsDst && q.Dst >= n {
		return nil, nil, zero, cliutil.ScheduleParams{}, fmt.Errorf("dst %d out of range (graph has %d vertices)", q.Dst, n)
	}
	for _, v := range q.Vertices {
		if v >= n {
			return nil, nil, zero, cliutil.ScheduleParams{}, fmt.Errorf("requested vertex %d out of range (graph has %d vertices)", v, n)
		}
	}
	params := cliutil.ScheduleParams{
		Strategy:   q.Strategy,
		Direction:  q.Direction,
		Delta:      q.Delta,
		NumBuckets: q.NumBuckets,
		Workers:    s.cfg.Workers,
		// The server always arms the watchdogs: a query is untrusted, and a
		// stalled round must not pin a run slot for longer than the budget.
		RoundTimeout: s.cfg.RoundTimeout,
		StuckRounds:  s.cfg.StuckRounds,
	}
	sched, err := params.Schedule()
	if err != nil {
		return nil, nil, zero, cliutil.ScheduleParams{}, err
	}
	return sp, g, sched, params, nil
}

// budget clamps the client's requested budget to the server's range.
func (s *Server) budget(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultBudget
	}
	if d > s.cfg.MaxBudget {
		d = s.cfg.MaxBudget
	}
	if d < minBudget {
		d = minBudget
	}
	return d
}

// fallbackSchedule is the known-safe schedule a faulted or broken (algo,
// strategy) key is re-routed to: lazy bucketing (valid for every algorithm
// and order), serial execution, SparsePush, with the PR 3 serial-retry
// machinery absorbing any further contained faults deterministically. The
// watchdogs stay armed — fallback runs are still untrusted.
func fallbackSchedule(params cliutil.ScheduleParams) (graphit.Schedule, error) {
	params.Strategy = "lazy"
	params.Direction = "SparsePush"
	params.Workers = 1
	params.OnFault = "retry_serial"
	return params.Schedule()
}

// runShielded executes one algorithm run with a last-resort panic shield:
// the engine contains panics in its own phases, but algorithm code outside
// an engine phase (argument checks, manual round loops like SetCover's)
// could still unwind into the handler. Any such panic is converted to a
// *graphit.PanicError so the serving layers see one fault taxonomy and the
// process never dies for a query.
func runShielded(ctx context.Context, sp *algo.Spec, g *graphit.Graph, src, dst graphit.VertexID, sched graphit.Schedule) (res *algo.QueryResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &graphit.PanicError{Phase: "server.query", Value: r, Stack: debug.Stack()}
		}
	}()
	return sp.Run(ctx, g, src, dst, sched)
}

// execute runs one validated query under the breaker policy for its (algo,
// strategy) key and fills the response. It returns the HTTP status.
func (s *Server) execute(ctx context.Context, q *Query, sp *algo.Spec, g *graphit.Graph, sched graphit.Schedule, params cliutil.ScheduleParams) (*Response, int) {
	cfg, _ := sched.Config()
	key := sp.Name + "/" + cfg.Strategy.String()
	resp := &Response{Algo: sp.Name, Graph: q.Graph, Strategy: cfg.Strategy.String()}
	src, dst := graphit.VertexID(q.Src), graphit.VertexID(q.Dst)

	var res *algo.QueryResult
	var err error
	primary, done := s.breakers.Route(key)
	if primary {
		res, err = runShielded(ctx, sp, g, src, dst, sched)
		fault := graphit.IsEngineFault(err)
		done(fault)
		if fault {
			resp.FaultKind = graphit.ClassifyFault(err)
			if ctx.Err() == nil {
				// Transparent re-route: the client still gets an answer from
				// the safe schedule, within what remains of its budget.
				if fsched, ferr := fallbackSchedule(params); ferr == nil {
					s.breakers.RecordFallback(key)
					resp.Fallback = true
					res, err = runShielded(ctx, sp, g, src, dst, fsched)
				}
			}
		}
	} else {
		resp.Fallback = true
		if fsched, ferr := fallbackSchedule(params); ferr == nil {
			res, err = runShielded(ctx, sp, g, src, dst, fsched)
		} else {
			err = ferr
		}
	}
	resp.Breaker = s.breakers.State(key).String()
	if res != nil {
		resp.Stats = &res.Stats
	}

	switch {
	case err == nil:
		s.summarize(resp, sp, res, q)
		return resp, 200
	case graphit.ClassifyFault(err) == graphit.FaultKindCanceled:
		resp.Error = "budget exhausted: " + err.Error()
		return resp, 504
	case graphit.IsEngineFault(err):
		// Both the primary and the fallback faulted (or the fallback alone,
		// with the breaker open) — a genuinely hostile run.
		resp.FaultKind = graphit.ClassifyFault(err)
		resp.Error = err.Error()
		return resp, 500
	default:
		// A request-shaped error surfaced by the wrapper itself (e.g.
		// k-core rejecting ∆>1): the client's fault, not the engine's.
		resp.Error = err.Error()
		return resp, 400
	}
}

// summarize fills the kind-specific result summary.
func (s *Server) summarize(resp *Response, sp *algo.Spec, res *algo.QueryResult, q *Query) {
	switch sp.Kind {
	case algo.KindCover:
		resp.CoverSize = res.NumChosen
	case algo.KindPair:
		if int(q.Dst) < len(res.Values) && res.Values[q.Dst] != graphit.Unreached {
			d := res.Values[q.Dst]
			resp.PairDist = &d
		}
	default: // KindDist, KindCoreness
		for _, v := range res.Values {
			if v != graphit.Unreached {
				resp.Reached++
				if v > resp.MaxValue {
					resp.MaxValue = v
				}
			}
		}
	}
	if len(q.Vertices) > 0 && res.Values != nil {
		resp.Values = make(map[string]int64, len(q.Vertices))
		for _, v := range q.Vertices {
			resp.Values[strconv.FormatUint(uint64(v), 10)] = res.Values[v]
		}
	}
}
