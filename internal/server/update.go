package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"graphit/internal/livegraph"
)

// maxUpdateBody bounds a POST /update request body. A maximal default batch
// (8192 ops) is well under 1 MiB of JSON; 4 MiB leaves room for raised
// -max-batch-ops without letting a hostile client buffer arbitrary input.
const maxUpdateBody = 4 << 20

// UpdateOp is one edge mutation on the wire. Op is "add", "remove", or
// "reweight"; W is required for add/reweight on weighted graphs and must be
// non-negative (the ordered engines assume non-negative weights).
type UpdateOp struct {
	Op  string `json:"op"`
	Src uint32 `json:"src"`
	Dst uint32 `json:"dst"`
	W   int32  `json:"w,omitempty"`
}

// UpdateRequest is the JSON body of POST /update: one batch of edge
// mutations applied atomically to one named graph. The batch either applies
// in full — advancing the graph's epoch by exactly one — or is rejected in
// full; there is no partial application.
type UpdateRequest struct {
	Graph string     `json:"graph"`
	Ops   []UpdateOp `json:"ops"`
}

// UpdateResponse reports an applied batch: the epoch the batch produced
// (queries answered at this epoch or later see the new edges) and the
// overlay backlog the compactor has yet to fold.
type UpdateResponse struct {
	Graph      string `json:"graph"`
	Epoch      uint64 `json:"epoch"`
	Applied    int    `json:"applied"`
	OverlayOps int    `json:"overlay_ops"`
	Error      string `json:"error,omitempty"`
}

// decodeUpdateBody parses and shape-validates one /update body. It is the
// complete wire-to-livegraph translation — the fuzz target drives exactly
// this function — so the handler behind it only routes and maps errors.
// Unknown fields and trailing garbage are rejected: a mutation endpoint
// should not guess at a client's intent.
func decodeUpdateBody(data []byte) (UpdateRequest, []livegraph.Op, error) {
	var req UpdateRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return UpdateRequest{}, nil, fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return UpdateRequest{}, nil, errors.New("bad request body: trailing data after batch")
	}
	if req.Graph == "" {
		return UpdateRequest{}, nil, errors.New("missing graph name")
	}
	if len(req.Ops) == 0 {
		return UpdateRequest{}, nil, errors.New("empty batch")
	}
	ops := make([]livegraph.Op, len(req.Ops))
	for i, op := range req.Ops {
		var kind livegraph.OpKind
		switch op.Op {
		case "add":
			kind = livegraph.OpAdd
		case "remove":
			kind = livegraph.OpRemove
		case "reweight":
			kind = livegraph.OpReweight
		default:
			return UpdateRequest{}, nil, fmt.Errorf("op %d: unknown op %q (want add, remove, or reweight)", i, op.Op)
		}
		if op.W < 0 {
			return UpdateRequest{}, nil, fmt.Errorf("op %d: negative weight %d", i, op.W)
		}
		ops[i] = livegraph.Op{Kind: kind, Src: op.Src, Dst: op.Dst, W: op.W}
	}
	return req, ops, nil
}

// handleUpdate applies one mutation batch. Failure taxonomy: malformed or
// semantically invalid batches are 400, an over-cap batch is 400 with the
// limit in the message, a full overlay is 429 backpressure with a jittered
// Retry-After sized to the compaction backoff, mutating an immutable
// (symmetric) graph is 409, and a closed graph or draining server is 503.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfter())
		writeJSON(w, http.StatusServiceUnavailable, &UpdateResponse{Error: "draining"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUpdateBody))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, &UpdateResponse{Error: "request body too large"})
		return
	}
	req, ops, err := decodeUpdateBody(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, &UpdateResponse{Error: err.Error()})
		return
	}
	live := s.lives[req.Graph]
	if live == nil {
		writeJSON(w, http.StatusNotFound, &UpdateResponse{Graph: req.Graph, Error: fmt.Sprintf("unknown graph %q", req.Graph)})
		return
	}
	if !s.cfg.Mutable {
		writeJSON(w, http.StatusForbidden, &UpdateResponse{Graph: req.Graph,
			Error: "server is read-only (start graphd with -mutable)"})
		return
	}
	res, err := live.ApplyBatch(ops)
	if res.DurableWait > 0 {
		s.pipe.ObserveDurableWait(res.DurableWait)
	}
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, livegraph.ErrOverlayFull):
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", s.retryAfter())
		case errors.Is(err, livegraph.ErrImmutable):
			status = http.StatusConflict
		case errors.Is(err, livegraph.ErrClosed):
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", s.retryAfter())
		case errors.Is(err, livegraph.ErrDurability):
			// The WAL could not make the batch durable. No Retry-After: a
			// poisoned store does not heal; the operator must intervene.
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, &UpdateResponse{Graph: req.Graph, Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, &UpdateResponse{
		Graph:      req.Graph,
		Epoch:      res.Epoch,
		Applied:    res.Applied,
		OverlayOps: res.OverlayOps,
	})
}
