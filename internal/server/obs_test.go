package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"graphit/internal/server"
)

func get(t testing.TB, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsEndpoint drives a query through an instrumented server and
// checks /metrics serves the Prometheus text format with the per-stage and
// per-(algo, strategy, graph) series advanced, and /debug/queries exports
// the structured trace.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := startServer(t, server.Config{Metrics: true, TraceRing: 16, CacheEntries: 8})

	status, resp := postQuery(t, ts, server.Query{Algo: "sssp", Graph: "road", Src: 0})
	if status != http.StatusOK || resp.Error != "" {
		t.Fatalf("query: status=%d err=%q", status, resp.Error)
	}
	postQuery(t, ts, server.Query{Algo: "sssp", Graph: "road", Src: 0}) // cache hit

	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		"# TYPE qexec_stage_duration_seconds histogram",
		`qexec_stage_duration_seconds_count{stage="run"} 1`,
		`qexec_outcomes_total{code="ok"} 2`,
		"qexec_cache_hits_total 1",
		`engine_runs_total{algo="sssp",graph="road",status="ok",strategy="`,
		`engine_round_duration_seconds_bucket{algo="sssp",graph="road",`,
		"qexec_inflight 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get(t, ts, "/debug/queries")
	if code != http.StatusOK {
		t.Fatalf("/debug/queries: status %d", code)
	}
	var dq server.DebugQueries
	if err := json.Unmarshal([]byte(body), &dq); err != nil {
		t.Fatalf("decode /debug/queries: %v", err)
	}
	if !dq.Enabled || len(dq.Queries) != 2 {
		t.Fatalf("debug queries: enabled=%v n=%d, want enabled with 2", dq.Enabled, len(dq.Queries))
	}
	if !dq.Queries[0].Cached || dq.Queries[0].Algo != "sssp" {
		t.Errorf("newest trace should be the sssp cache hit: %+v", dq.Queries[0])
	}
	if dq.Queries[1].Rounds == 0 || len(dq.Queries[1].Events) == 0 {
		t.Errorf("leader trace carries no round events: %+v", dq.Queries[1])
	}
}

// TestMetricsDisabled pins the off switch: /metrics 404s and /debug/queries
// reports disabled, while querying still works.
func TestMetricsDisabled(t *testing.T) {
	_, ts := startServer(t, server.Config{})
	if status, resp := postQuery(t, ts, server.Query{Algo: "sssp", Graph: "road", Src: 0}); status != http.StatusOK || resp.Error != "" {
		t.Fatalf("query: status=%d err=%q", status, resp.Error)
	}
	if code, _ := get(t, ts, "/metrics"); code != http.StatusNotFound {
		t.Errorf("/metrics with metrics disabled: status %d, want 404", code)
	}
	code, body := get(t, ts, "/debug/queries")
	if code != http.StatusOK {
		t.Fatalf("/debug/queries: status %d", code)
	}
	var dq server.DebugQueries
	if err := json.Unmarshal([]byte(body), &dq); err != nil {
		t.Fatalf("decode /debug/queries: %v", err)
	}
	if dq.Enabled || len(dq.Queries) != 0 {
		t.Errorf("debug queries should report disabled+empty, got %+v", dq)
	}
}
