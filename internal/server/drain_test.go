package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"graphit"
	"graphit/algo"
	"graphit/internal/core"
	"graphit/internal/parallel"
	"graphit/internal/server"
	"graphit/internal/testutil"
)

// TestGracefulDrainMidQuery is the satellite-3 drill, run under -race in CI:
// shutdown begins while a query is held mid-round by an injected stall. The
// in-flight query must complete correctly, new work must be rejected the
// moment draining starts, readiness must flip, Shutdown must return only
// after the last query finishes, and no goroutine may outlive it.
func TestGracefulDrainMidQuery(t *testing.T) {
	defer testutil.LeakCheck(t, parallel.CloseIdle)()

	g := testGraph(t)
	ref, err := algo.Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	srv, ts := startServer(t, server.Config{
		Graphs:        map[string]*graphit.Graph{"road": g},
		RoundTimeout:  time.Minute, // the gate stalls a round on purpose
		MaxBudget:     time.Minute,
		DefaultBudget: 30 * time.Second,
		DrainGrace:    10 * time.Second,
		BaseContext:   gateHook(gate),
	})

	// Launch the query that will block at its round-2 gate.
	ids := allVertices(g)
	type result struct {
		status int
		resp   *server.Response
	}
	inflight := make(chan result, 1)
	go func() {
		st, resp := postQuery(t, ts, server.Query{Algo: "sssp", Graph: "road", Src: 0, Vertices: ids})
		inflight <- result{st, resp}
	}()
	waitFor(t, "query in flight", func() bool { return srv.InFlight() == 1 })

	// Begin the drain concurrently; it must not return while the query runs.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		drained <- srv.Shutdown(ctx)
	}()
	waitFor(t, "readiness to flip", func() bool {
		resp, err := ts.Client().Get(ts.URL + "/readyz")
		if err != nil {
			t.Errorf("readyz: %v", err)
			return true
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})

	// New queries are rejected while draining.
	body, _ := json.Marshal(server.Query{Algo: "sssp", Graph: "road", Src: 0})
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 during drain without Retry-After")
	}

	// Shutdown is still waiting on the gated query.
	select {
	case err := <-drained:
		t.Fatalf("Shutdown returned (%v) with a query still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Release the gate: the in-flight query completes with the right answer,
	// and the drain then finishes cleanly.
	close(gate)
	r := <-inflight
	if r.status != 200 || r.resp.Error != "" || r.resp.Fallback {
		t.Fatalf("in-flight query after drain: status %d resp %+v", r.status, r.resp)
	}
	wantValues(t, r.resp, ids, ref)
	if err := <-drained; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if srv.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain", srv.InFlight())
	}

	ts.Close()
	ts.Client().CloseIdleConnections()
}

// TestDrainDeadlineCancelsStragglers covers the forced path: the drain
// deadline passes while a query is wedged, so the server cancels the run's
// context, the engine halts at its round barrier, and Shutdown still comes
// back (within DrainGrace) rather than hanging forever.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	defer testutil.LeakCheck(t, parallel.CloseIdle)()

	// Stall round 2 until the query's own context is cancelled — exactly the
	// signal the drain's kill path delivers. BaseContext receives the final
	// per-query context (deadline + drain-kill chain), so the closure can
	// watch it; a 30s cap keeps the test bounded if the kill never comes.
	stall := func(ctx context.Context) context.Context {
		hook := func(phase string, round int64, _ int) {
			if phase == core.PhaseRelax && round == 2 {
				select {
				case <-ctx.Done():
				case <-time.After(30 * time.Second):
				}
			}
		}
		return core.WithFaultHook(ctx, hook)
	}
	srv, ts := startServer(t, server.Config{
		RoundTimeout:  time.Minute,
		MaxBudget:     time.Minute,
		DefaultBudget: 30 * time.Second,
		DrainGrace:    5 * time.Second,
		BaseContext:   stall,
	})

	done := make(chan int, 1)
	go func() {
		st, _ := postQuery(t, ts, server.Query{Algo: "sssp", Graph: "road", Src: 0})
		done <- st
	}()
	waitFor(t, "query in flight", func() bool { return srv.InFlight() == 1 })

	// A drain deadline in the past forces the kill path immediately.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after forced cancel: %v", err)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("forced drain took %v", waited)
	}
	// The wedged query was cancelled, not completed: budget-exhausted reply.
	if st := <-done; st != 504 {
		t.Fatalf("cancelled query status %d, want 504", st)
	}

	ts.Close()
	ts.Client().CloseIdleConnections()
}
