// Package server is graphd's HTTP codec over the transport-agnostic query
// pipeline (internal/qexec). Everything substantive — admission, budgets,
// caching, coalescing, breaker routing, shielded execution, fault fallback
// — lives in the pipeline; this package only decodes JSON queries, calls
// Pipeline.Do, and maps typed Outcomes to HTTP status codes. The one piece
// of serving state it owns is the drain flag behind /readyz: shutdown flips
// readiness first (so load balancers stop routing), then delegates the
// actual drain — event-driven in-flight wait, kill-at-round-barrier, grace
// period — to Pipeline.Close.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"graphit"
	"graphit/internal/core"
	"graphit/internal/livegraph"
	"graphit/internal/obs"
	"graphit/internal/qexec"
	"graphit/internal/wal"
)

// Config parameterizes a Server. It mirrors qexec.Config field for field
// (zero values take the same documented defaults) so that operators
// configure one surface; the zero-valued cache/coalesce knobs leave those
// stages off.
type Config struct {
	// Graphs are the named graphs loaded at startup; queries reference them
	// by name. The map is read-only after New.
	Graphs map[string]*graphit.Graph
	// MaxConcurrent / QueueDepth bound the pipeline's admission stage.
	MaxConcurrent int
	QueueDepth    int
	// Workers is the per-run engine worker count (0 = engine default).
	Workers int
	// DefaultBudget / MaxBudget clamp the per-query wall-clock budget.
	DefaultBudget time.Duration
	MaxBudget     time.Duration
	// RoundTimeout / StuckRounds arm the engine watchdogs for every query.
	RoundTimeout time.Duration
	StuckRounds  int
	// BreakerThreshold / BreakerCooldown parameterize the per-key breakers.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// DrainGrace bounds the extra wait for runs cancelled at the drain
	// deadline to unwind.
	DrainGrace time.Duration
	// CacheEntries / CacheTTL size the pipeline's result cache (0 entries
	// disables it); Coalesce enables singleflight run sharing.
	CacheEntries int
	CacheTTL     time.Duration
	Coalesce     bool
	// BatchWindow / BatchMaxLanes parameterize the batch-coalescing stage:
	// concurrent lazy-strategy queries that differ only in source collect
	// for BatchWindow and execute as one multi-source engine run (0
	// disables the stage); BatchMaxLanes caps a run's lane count.
	BatchWindow   time.Duration
	BatchMaxLanes int
	// MaxVertices caps the per-request vertices selection.
	MaxVertices int
	// Metrics enables GET /metrics (Prometheus text format) backed by the
	// pipeline's counters and per-stage latency histograms plus the
	// engine's per-(algo, strategy, graph) round histograms. Disabled, the
	// endpoint 404s and the pipeline hot path records nothing.
	Metrics bool
	// TraceRing retains the last N per-query structured traces, served at
	// GET /debug/queries; 0 disables both.
	TraceRing int
	// Mutable enables POST /update. Read-only servers still wrap their
	// graphs in live handles (queries pin epoch snapshots either way) but
	// reject mutation batches with 403.
	Mutable bool
	// MaxBatchOps / MaxOverlayOps / CompactThreshold parameterize each
	// graph's live handle: the per-batch op cap, the un-compacted overlay
	// backpressure cap, and the overlay size that wakes the background
	// compactor. Zeros take the livegraph defaults.
	MaxBatchOps      int
	MaxOverlayOps    int
	CompactThreshold int
	// DataDir, when set on a Mutable server, makes every mutable graph
	// durable: each gets a WAL + checkpoint store under DataDir/<name>,
	// New recovers it (checkpoint load + replay) before serving, and
	// POST /update acks only after the batch is durable under WALSync.
	// Empty DataDir keeps PR 8's in-memory behavior; read-only servers
	// (-mutable=false) never touch the durability path at all.
	DataDir string
	// WALSync is the fsync policy for acked mutations (default SyncAlways).
	WALSync wal.SyncMode
	// WALSyncEvery is the background fsync period for wal.SyncInterval.
	WALSyncEvery time.Duration
	// WALSegmentBytes overrides the WAL segment rotation threshold
	// (0 = wal default; tests use tiny segments to exercise rotation).
	WALSegmentBytes int64
	// CheckpointOps is how many applied ops trigger a checkpoint between
	// compactions (0 = livegraph default).
	CheckpointOps int
	// WALFaultHook, when non-nil, fires at the wal.Phase* checkpoints of
	// every graph's store — the seam recovery drills use to inject fsync,
	// rotate, and checkpoint faults.
	WALFaultHook core.FaultHook
	// BaseContext, if set, wraps every query's context before execution —
	// the seam tests use to install fault injectors.
	BaseContext func(context.Context) context.Context
}

// Server is the query service. Construct with New, mount Handler on an
// http.Server, and call Shutdown to drain.
type Server struct {
	cfg      Config
	pipe     *qexec.Pipeline
	lives    map[string]*livegraph.Live // server-owned; closed after the pipeline drains
	reg      *obs.Registry              // nil: metrics disabled
	mux      *http.ServeMux
	draining atomic.Bool
	recovery map[string]livegraph.RecoverInfo // per-graph boot recovery (durable graphs only)
}

// New builds a Server over cfg.
func New(cfg Config) (*Server, error) {
	if len(cfg.Graphs) == 0 {
		return nil, fmt.Errorf("server: no graphs configured")
	}
	var reg *obs.Registry
	if cfg.Metrics {
		reg = obs.NewRegistry()
	}
	// The server owns the live handles (not the pipeline) so that /update
	// can reach them directly and Shutdown can sequence their close after
	// the query drain.
	lives := make(map[string]*livegraph.Live, len(cfg.Graphs))
	closeLives := func() {
		for _, l := range lives {
			l.Close()
		}
	}
	recovery := make(map[string]livegraph.RecoverInfo)
	for name, g := range cfg.Graphs {
		lcfg := livegraph.Config{
			MaxBatchOps:      cfg.MaxBatchOps,
			MaxOverlayOps:    cfg.MaxOverlayOps,
			CompactThreshold: cfg.CompactThreshold,
			CheckpointOps:    cfg.CheckpointOps,
			Metrics:          reg,
		}
		// Durability is opt-in twice over: the server must be mutable AND
		// have a data dir, and the graph itself must accept mutations.
		// Read-only serving paths take zero durability overhead.
		if cfg.Mutable && cfg.DataDir != "" && !g.Symmetric() {
			store, err := wal.Open(filepath.Join(cfg.DataDir, name), wal.Options{
				Sync:         cfg.WALSync,
				SyncEvery:    cfg.WALSyncEvery,
				SegmentBytes: cfg.WALSegmentBytes,
				Name:         name,
				Metrics:      reg,
				FaultHook:    cfg.WALFaultHook,
			})
			if err != nil {
				closeLives()
				return nil, fmt.Errorf("server: opening wal for %q: %w", name, err)
			}
			live, info, err := livegraph.Recover(name, g, store, lcfg)
			if err != nil {
				_ = store.Close()
				closeLives()
				return nil, fmt.Errorf("server: recovering %q: %w", name, err)
			}
			lives[name] = live
			recovery[name] = info
			continue
		}
		lives[name] = livegraph.New(name, g, lcfg)
	}
	pipe, err := qexec.New(qexec.Config{
		Live:             lives,
		MaxConcurrent:    cfg.MaxConcurrent,
		QueueDepth:       cfg.QueueDepth,
		Workers:          cfg.Workers,
		DefaultBudget:    cfg.DefaultBudget,
		MaxBudget:        cfg.MaxBudget,
		RoundTimeout:     cfg.RoundTimeout,
		StuckRounds:      cfg.StuckRounds,
		BreakerThreshold: cfg.BreakerThreshold,
		BreakerCooldown:  cfg.BreakerCooldown,
		DrainGrace:       cfg.DrainGrace,
		CacheEntries:     cfg.CacheEntries,
		CacheTTL:         cfg.CacheTTL,
		Coalesce:         cfg.Coalesce,
		BatchWindow:      cfg.BatchWindow,
		BatchMaxLanes:    cfg.BatchMaxLanes,
		MaxVertices:      cfg.MaxVertices,
		Metrics:          reg,
		TraceRing:        cfg.TraceRing,
		BaseContext:      cfg.BaseContext,
	})
	if err != nil {
		for _, l := range lives {
			l.Close()
		}
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{cfg: cfg, pipe: pipe, lives: lives, reg: reg, recovery: recovery}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/queries", s.handleDebugQueries)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /update", s.handleUpdate)
	return s, nil
}

// handleMetrics serves the Prometheus text exposition. The registry is
// scraped live: counters and histograms are read lock-free, and the gauges
// (in-flight, queued, breaker states) are evaluated at scrape time.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.reg == nil {
		http.Error(w, "metrics disabled (start with -metrics)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", obs.TextContentType)
	_ = s.reg.WriteText(w)
}

// DebugQueries is the /debug/queries document: the most recent per-query
// structured traces, newest first.
type DebugQueries struct {
	Enabled bool               `json:"enabled"`
	Queries []qexec.QueryTrace `json:"queries"`
}

func (s *Server) handleDebugQueries(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.TraceRing <= 0 {
		writeJSON(w, 200, DebugQueries{Enabled: false, Queries: []qexec.QueryTrace{}})
		return
	}
	qs := s.pipe.Traces()
	if qs == nil {
		qs = []qexec.QueryTrace{}
	}
	writeJSON(w, 200, DebugQueries{Enabled: true, Queries: qs})
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// handleHealthz: liveness — the process is up.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz: readiness — flips to 503 the moment a drain begins, so a
// load balancer stops routing before admission starts rejecting.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// Status is the /statusz document: the pipeline's per-stage counters plus
// the serving-level drain flag and graph inventory.
type Status struct {
	Draining  bool                             `json:"draining"`
	Mutable   bool                             `json:"mutable"`
	Graphs    map[string]int                   `json:"graphs"` // name -> vertex count
	Live      []livegraph.Status               `json:"live_graphs"`
	Recovery  map[string]livegraph.RecoverInfo `json:"recovery,omitempty"` // durable graphs: boot recovery outcome
	Admission qexec.AdmissionStatus            `json:"admission"`
	Breakers  []qexec.BreakerStatus            `json:"breakers"`
	Cache     qexec.CacheStatus                `json:"cache"`
	Coalesce  qexec.CoalesceStatus             `json:"coalesce"`
	Batch     qexec.BatchStatus                `json:"batch"`
	Runs      int64                            `json:"runs"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	ps := s.pipe.Status()
	st := Status{
		Draining:  s.draining.Load(),
		Mutable:   s.cfg.Mutable,
		Graphs:    make(map[string]int, len(s.cfg.Graphs)),
		Live:      ps.Graphs,
		Admission: ps.Admission,
		Breakers:  ps.Breakers,
		Cache:     ps.Cache,
		Coalesce:  ps.Coalesce,
		Batch:     ps.Batch,
		Runs:      ps.Runs,
	}
	if len(s.recovery) > 0 {
		st.Recovery = s.recovery
	}
	for name, g := range s.cfg.Graphs {
		st.Graphs[name] = g.NumVertices()
	}
	writeJSON(w, 200, st)
}

// retryBase estimates when shed load should come back: one default budget
// is the expected time for the queue to turn over, floored at 1s.
func (s *Server) retryBase() int64 {
	budget := s.cfg.DefaultBudget
	if budget <= 0 {
		budget = 2 * time.Second // the pipeline's default
	}
	sec := int64(budget / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

// retryAfter renders a Retry-After value drawn uniformly from [base, 2*base]
// seconds. The jitter matters under load: every rejected client gets the
// same header, and an un-jittered value re-synchronizes them into a retry
// stampede that re-fills the queue the moment it drains. math/rand/v2's
// global generator is goroutine-safe, so concurrent rejections need no lock.
func (s *Server) retryAfter() string {
	base := s.retryBase()
	return strconv.FormatInt(base+rand.Int64N(base+1), 10)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfter())
		writeJSON(w, http.StatusServiceUnavailable, &Response{Error: qexec.ErrDraining.Error()})
		return
	}
	var q Query
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&q); err != nil {
		writeJSON(w, http.StatusBadRequest, &Response{Error: "bad request body: " + err.Error()})
		return
	}
	start := time.Now()
	out := s.pipe.Do(r.Context(), q.request())
	resp := newResponse(out)
	resp.ElapsedMS = time.Since(start).Milliseconds()
	status := httpStatus(out.Code)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", s.retryAfter())
	}
	writeJSON(w, status, resp)
}

// InFlight returns the number of queries currently executing (post-
// admission). Exposed for drain tests.
func (s *Server) InFlight() int { return s.pipe.InFlight() }

// Shutdown gracefully drains the server: readiness flips immediately, then
// the pipeline stops admitting, waits (event-driven) for in-flight runs
// under ctx's deadline, and cancels stragglers at their round barriers with
// a bounded grace. Shutdown is idempotent; a Server that failed to drain is
// still memory-safe, only late.
// Live handles close after the drain: a query admitted before the flip may
// still need to pin a snapshot, and closing a Live only releases its owner
// reference — snapshots pinned by stragglers stay valid until released.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.pipe.Close(ctx)
	for _, l := range s.lives {
		l.Close()
	}
	return err
}

// RecoveringHandler is the handler graphd serves while New is still
// recovering durable graphs (checkpoint load + WAL replay): liveness
// answers ok, readiness and everything else answer 503, so load
// balancers hold traffic without declaring the process dead. graphd
// binds its listener with this handler immediately and atomically swaps
// in the real one when recovery completes.
func RecoveringHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "recovering")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, &Response{Error: "recovering: replaying mutation log"})
	})
	return mux
}

// Recovery returns each durable graph's boot-recovery outcome.
func (s *Server) Recovery() map[string]livegraph.RecoverInfo { return s.recovery }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
