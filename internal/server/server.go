// Package server implements graphd's fault-tolerant query service over the
// ordered engine. Every query is treated as untrusted: it passes through a
// four-stage pipeline —
//
//	admission  -> bounded queue + concurrency limiter sized to the shared
//	              parallel.Executor pool; overflow is shed fast with 429.
//	deadline   -> the client budget becomes a context deadline, and the
//	              engine's RoundTimeout/StuckRounds watchdogs are always
//	              armed, so a stalled round cannot pin a run slot.
//	breaker    -> consecutive contained faults (PanicError/StuckError) for
//	              an (algo, strategy) key trip a circuit breaker; while
//	              open, requests are transparently served by a known-safe
//	              serial lazy fallback schedule, and the breaker half-opens
//	              on a timer to probe recovery.
//	drain      -> shutdown flips /readyz, stops admission, and waits for
//	              in-flight runs under a deadline, cancelling them at round
//	              barriers if the deadline passes.
//
// The pipeline builds directly on the engine's containment primitives:
// typed PanicError/StuckError faults, the round watchdog, and the
// retry_serial recovery machinery.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"graphit"
	"graphit/internal/parallel"
)

// minBudget floors the per-query budget: below this a query cannot make a
// round of progress and the deadline only produces noise.
const minBudget = 10 * time.Millisecond

// Config parameterizes a Server. Zero values take the documented defaults.
type Config struct {
	// Graphs are the named graphs loaded at startup; queries reference them
	// by name. The map is read-only after New.
	Graphs map[string]*graphit.Graph
	// MaxConcurrent bounds concurrently executing runs. Default:
	// min(GOMAXPROCS, parallel.ExecutorPoolCap()) — beyond the executor
	// pool's cap, admitted runs would construct worker pools per call.
	MaxConcurrent int
	// QueueDepth bounds requests waiting for a run slot; overflow is shed
	// with 429. Default: 2*MaxConcurrent.
	QueueDepth int
	// Workers is the per-run engine worker count (0 = engine default).
	Workers int
	// DefaultBudget / MaxBudget clamp the per-query wall-clock budget.
	// Defaults: 2s / 30s.
	DefaultBudget time.Duration
	MaxBudget     time.Duration
	// RoundTimeout arms the engine's per-round watchdog for every query
	// (default 5s; it cannot be disabled — queries are untrusted).
	RoundTimeout time.Duration
	// StuckRounds arms the engine's no-progress detector (default 256).
	StuckRounds int
	// BreakerThreshold consecutive engine faults trip an (algo, strategy)
	// breaker (default 3); BreakerCooldown later it half-opens (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// DrainGrace bounds the extra wait for runs cancelled at the drain
	// deadline to unwind (default 2s).
	DrainGrace time.Duration
	// BaseContext, if set, wraps every query's context before execution —
	// the seam tests use to install fault injectors.
	BaseContext func(context.Context) context.Context
}

func (c *Config) applyDefaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
		if poolCap := parallel.ExecutorPoolCap(); c.MaxConcurrent > poolCap {
			c.MaxConcurrent = poolCap
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxConcurrent
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 2 * time.Second
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 30 * time.Second
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 5 * time.Second
	}
	if c.StuckRounds <= 0 {
		c.StuckRounds = 256
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 2 * time.Second
	}
}

// Server is the query service. Construct with New, mount Handler on an
// http.Server, and call Shutdown to drain.
type Server struct {
	cfg      Config
	adm      *admission
	breakers *Breakers
	mux      *http.ServeMux

	draining atomic.Bool
	inflight atomic.Int64

	// killCtx is cancelled when a drain deadline expires: every in-flight
	// query's context is chained to it (context.AfterFunc), forcing the
	// engines to halt at their next round barrier.
	killCtx context.Context
	kill    context.CancelFunc
}

// New builds a Server over cfg.
func New(cfg Config) (*Server, error) {
	if len(cfg.Graphs) == 0 {
		return nil, fmt.Errorf("server: no graphs configured")
	}
	cfg.applyDefaults()
	s := &Server{
		cfg:      cfg,
		adm:      newAdmission(cfg.MaxConcurrent, cfg.QueueDepth),
		breakers: NewBreakers(cfg.BreakerThreshold, cfg.BreakerCooldown),
	}
	s.killCtx, s.kill = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) graphNames() string {
	names := make([]string, 0, len(s.cfg.Graphs))
	for name := range s.cfg.Graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// handleHealthz: liveness — the process is up.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz: readiness — flips to 503 the moment a drain begins, so a
// load balancer stops routing before admission starts rejecting.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// Status is the /statusz document.
type Status struct {
	Draining  bool            `json:"draining"`
	Graphs    map[string]int  `json:"graphs"` // name -> vertex count
	Admission AdmissionStatus `json:"admission"`
	Breakers  []BreakerStatus `json:"breakers"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	st := Status{
		Draining:  s.draining.Load(),
		Graphs:    make(map[string]int, len(s.cfg.Graphs)),
		Admission: s.adm.status(),
		Breakers:  s.breakers.Snapshot(),
	}
	for name, g := range s.cfg.Graphs {
		st.Graphs[name] = g.NumVertices()
	}
	sort.Slice(st.Breakers, func(i, j int) bool { return st.Breakers[i].Key < st.Breakers[j].Key })
	writeJSON(w, 200, st)
}

// retryAfter estimates when shed load should come back: one default budget
// is the expected time for the queue to turn over, floored at 1s.
func (s *Server) retryAfter() string {
	sec := int(s.cfg.DefaultBudget / time.Second)
	if sec < 1 {
		sec = 1
	}
	return strconv.Itoa(sec)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfter())
		writeJSON(w, http.StatusServiceUnavailable, &Response{Error: ErrDraining.Error()})
		return
	}
	var q Query
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&q); err != nil {
		writeJSON(w, http.StatusBadRequest, &Response{Error: "bad request body: " + err.Error()})
		return
	}
	sp, g, sched, params, err := s.validate(&q)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, &Response{Algo: q.Algo, Graph: q.Graph, Error: err.Error()})
		return
	}

	// Admission: hold a run slot or shed. Waiting is bounded by both the
	// queue depth and the client's context.
	release, err := s.adm.acquire(r.Context())
	switch err {
	case nil:
	case ErrShed:
		w.Header().Set("Retry-After", s.retryAfter())
		writeJSON(w, http.StatusTooManyRequests, &Response{Algo: q.Algo, Graph: q.Graph, Error: err.Error()})
		return
	case ErrDraining:
		w.Header().Set("Retry-After", s.retryAfter())
		writeJSON(w, http.StatusServiceUnavailable, &Response{Algo: q.Algo, Graph: q.Graph, Error: err.Error()})
		return
	default: // client context ended while queued
		writeJSON(w, 499, &Response{Algo: q.Algo, Graph: q.Graph, Error: err.Error()})
		return
	}
	defer release()

	// Deadline: client budget -> context; drain kill -> same context.
	ctx, cancel := context.WithTimeout(r.Context(), s.budget(q.BudgetMS))
	defer cancel()
	stop := context.AfterFunc(s.killCtx, cancel)
	defer stop()
	if s.cfg.BaseContext != nil {
		ctx = s.cfg.BaseContext(ctx)
	}

	s.inflight.Add(1)
	start := time.Now()
	resp, status := s.execute(ctx, &q, sp, g, sched, params)
	resp.ElapsedMS = time.Since(start).Milliseconds()
	s.inflight.Add(-1)
	writeJSON(w, status, resp)
}

// InFlight returns the number of queries currently executing (post-
// admission). Exposed for drain tests.
func (s *Server) InFlight() int { return int(s.inflight.Load()) }

// Shutdown gracefully drains the server: readiness flips immediately, new
// queries are rejected, queued waiters fail with ErrDraining, and in-flight
// runs are given until ctx's deadline to finish. If the deadline passes,
// every in-flight run's context is cancelled — the engines halt at their
// next round barrier — and Shutdown waits DrainGrace longer before
// reporting the stragglers. Shutdown is idempotent; it never kills the
// process state: a Server that failed to drain is still memory-safe, only
// late.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.adm.close()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			// Deadline passed: cancel in-flight runs and give them a
			// bounded grace to unwind through their round barriers.
			s.kill()
			grace := time.After(s.cfg.DrainGrace)
			for s.inflight.Load() > 0 {
				select {
				case <-grace:
					return fmt.Errorf("server: drain incomplete: %d queries still in flight: %w",
						s.inflight.Load(), ctx.Err())
				case <-tick.C:
				}
			}
			return nil
		case <-tick.C:
		}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
