package server_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphit"
	"graphit/algo"
	"graphit/internal/core"
	"graphit/internal/faults"
	"graphit/internal/parallel"
	"graphit/internal/server"
	"graphit/internal/testutil"
)

// TestFaultDrill is the PR's acceptance drill, run under -race in CI: a
// sustained barrage of concurrent mixed queries while every engine run has
// panics injected into its early relax rounds. The service must never crash,
// must answer every query correctly via its fallback path, must trip
// breakers, and — once the injection stops — must half-open, probe, recover,
// and shut down without leaking a goroutine.
func TestFaultDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("fault drill is a long test")
	}
	defer testutil.LeakCheck(t, parallel.CloseIdle)()

	g, err := graphit.RoadGrid(graphit.RoadOptions{Rows: 24, Cols: 24, Seed: 11, DeleteFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	refDist, err := algo.Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	refCore, err := algo.RefKCore(g)
	if err != nil {
		t.Fatal(err)
	}

	// While injecting is set, every query's context gets a fresh injector.
	// Most queries get panics in every relax chunk of rounds <= 3 — early
	// rounds always make progress, so the serial-retry fallback converges,
	// and Repeat keeps the parallel primary faulting on every attempt. Every
	// 8th query instead gets a one-shot round stall long enough to trip the
	// 2s round watchdog, so the drill exercises both fault kinds. (A stall
	// only bites when the query's primary actually runs and reaches round 2
	// — open breakers and setcover's engine-free loop skip it — so the rate
	// is set well above the one-in-a-drill minimum the assertion needs.)
	var injecting, stallOnly atomic.Bool
	var reqCounter atomic.Int64
	injecting.Store(true)
	base := func(ctx context.Context) context.Context {
		if !injecting.Load() {
			return ctx
		}
		if stallOnly.Load() || reqCounter.Add(1)%8 == 0 {
			in := faults.New(faults.DelayAt(core.PhaseRelax, 2, 4*time.Second))
			return in.Context(ctx)
		}
		in := faults.New(faults.Trigger{
			Phase:      core.PhaseRelaxChunk,
			Match:      func(r int64) bool { return r <= 3 },
			Repeat:     true,
			PanicValue: "drill: hostile edge function",
		})
		return in.Context(ctx)
	}

	srv, ts := startServer(t, server.Config{
		Graphs:           map[string]*graphit.Graph{"road": g},
		MaxConcurrent:    4,
		QueueDepth:       200,
		Workers:          2,
		BreakerThreshold: 3,
		BreakerCooldown:  200 * time.Millisecond,
		RoundTimeout:     2 * time.Second,
		StuckRounds:      64,
		DefaultBudget:    10 * time.Second,
		MaxBudget:        30 * time.Second,
		BaseContext:      base,
	})

	// Phase 1: 120 concurrent mixed queries under continuous injection.
	const n = 120
	ids := allVertices(g)
	queries := func(i int) server.Query {
		switch i % 5 {
		case 0: // checked full-vector SSSP on the default (eager) strategy
			return server.Query{Algo: "sssp", Graph: "road", Src: 0, Vertices: ids}
		case 1:
			return server.Query{Algo: "sssp", Graph: "road", Src: 0, Strategy: "lazy", Delta: 64}
		case 2:
			return server.Query{Algo: "ppsp", Graph: "road", Src: 0, Dst: uint32(g.NumVertices() - 1)}
		case 3: // checked full-vector k-core
			return server.Query{Algo: "kcore", Graph: "road", Strategy: "lazy_constant_sum", Vertices: ids}
		default:
			return server.Query{Algo: "setcover", Graph: "road"}
		}
	}
	type outcome struct {
		i      int
		status int
		resp   *server.Response
	}
	results := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, resp := postQuery(t, ts, queries(i))
			results[i] = outcome{i, st, resp}
		}(i)
	}
	wg.Wait()

	faulted, fellBack, panics, stalls := 0, 0, 0, 0
	for _, r := range results {
		if r.status != 200 {
			t.Fatalf("query %d (%s): status %d, error %q", r.i, r.resp.Algo, r.status, r.resp.Error)
		}
		switch r.resp.FaultKind {
		case graphit.FaultKindPanic:
			faulted++
			panics++
		case graphit.FaultKindStuck:
			faulted++
			stalls++
		}
		if r.resp.Fallback {
			fellBack++
		}
		// Every checked query's answer must equal the sequential reference,
		// no matter which path produced it.
		switch r.i % 5 {
		case 0:
			wantValues(t, r.resp, ids, refDist)
		case 2:
			dst := uint32(g.NumVertices() - 1)
			if r.resp.PairDist == nil || *r.resp.PairDist != refDist[dst] {
				t.Fatalf("query %d: ppsp dist %v, want %d", r.i, r.resp.PairDist, refDist[dst])
			}
		case 3:
			wantValues(t, r.resp, ids, refCore)
		}
	}
	if panics == 0 || fellBack == 0 {
		t.Fatalf("drill saw %d panics, %d fallbacks — injection did not bite", panics, fellBack)
	}
	// Deterministic stall check: a fresh (algo, strategy) key whose breaker
	// is closed, so the primary must run, hit the stall, trip the watchdog,
	// and still answer correctly via the fallback.
	stallOnly.Store(true)
	st, resp := postQuery(t, ts, server.Query{
		Algo: "sssp", Graph: "road", Src: 0, Strategy: "eager_no_fusion", Vertices: ids,
	})
	stallOnly.Store(false)
	if st != 200 || resp.FaultKind != graphit.FaultKindStuck || !resp.Fallback {
		t.Fatalf("stalled query: status %d resp %+v, want 200 with a stuck fault and fallback", st, resp)
	}
	wantValues(t, resp, ids, refDist)
	stalls++
	trips := int64(0)
	for _, br := range statusOf(t, ts).Breakers {
		trips += br.Trips
	}
	if trips == 0 {
		t.Fatal("no breaker tripped under sustained injection")
	}
	t.Logf("drill: %d queries, %d primary faults (%d panics, %d stalls), %d fallbacks, %d breaker trips",
		n, faulted, panics, stalls, fellBack, trips)

	// Phase 2: stop the injection; breakers must half-open after the
	// cooldown, probe successfully, and return to primary service.
	injecting.Store(false)
	recovered := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, resp := postQuery(t, ts, server.Query{Algo: "sssp", Graph: "road", Src: 0, Vertices: ids})
		if st != 200 {
			t.Fatalf("post-injection query: status %d, error %q", st, resp.Error)
		}
		if !resp.Fallback && resp.Breaker == "closed" && resp.FaultKind == "" {
			wantValues(t, resp, ids, refDist)
			recovered = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("sssp/eager_with_fusion never recovered to primary service after injection stopped")
	}

	// Phase 3: graceful shutdown, goroutine-leak-free (LeakCheck deferred).
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	ts.Close()
	ts.Client().CloseIdleConnections()
}
