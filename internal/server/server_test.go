package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"graphit"
	"graphit/algo"
	"graphit/internal/core"
	"graphit/internal/faults"
	"graphit/internal/server"
)

// testGraph builds the small road network every server test queries: 16x16,
// weighted, symmetric, with coordinates — valid input for every algorithm.
func testGraph(t testing.TB) *graphit.Graph {
	t.Helper()
	g, err := graphit.RoadGrid(graphit.RoadOptions{Rows: 16, Cols: 16, Seed: 7, DeleteFrac: 0.05})
	if err != nil {
		t.Fatalf("RoadGrid: %v", err)
	}
	return g
}

// startServer builds a Server over cfg (filling Graphs with the test graph
// if unset) and mounts it on an httptest.Server.
func startServer(t testing.TB, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.Graphs == nil {
		cfg.Graphs = map[string]*graphit.Graph{"road": testGraph(t)}
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ts.Client().CloseIdleConnections()
	})
	return srv, ts
}

// postQuery sends q to /query and decodes the response.
func postQuery(t testing.TB, ts *httptest.Server, q server.Query) (int, *server.Response) {
	t.Helper()
	body, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	var out server.Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, &out
}

// allVertices lists every vertex id, for full-vector result requests.
func allVertices(g *graphit.Graph) []uint32 {
	ids := make([]uint32, g.NumVertices())
	for i := range ids {
		ids[i] = uint32(i)
	}
	return ids
}

// wantValues asserts that the response's Values equal want at every
// requested vertex.
func wantValues(t testing.TB, resp *server.Response, ids []uint32, want []int64) {
	t.Helper()
	if len(resp.Values) != len(ids) {
		t.Fatalf("response has %d values, want %d", len(resp.Values), len(ids))
	}
	for _, v := range ids {
		got, ok := resp.Values[strconv.FormatUint(uint64(v), 10)]
		if !ok || got != want[v] {
			t.Fatalf("vertex %d: got %d (present=%v), want %d", v, got, ok, want[v])
		}
	}
}

func TestHealthReadyStatus(t *testing.T) {
	_, ts := startServer(t, server.Config{})
	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Draining || st.Graphs["road"] != 256 || st.Admission.MaxConcurrent < 1 {
		t.Fatalf("statusz = %+v", st)
	}
}

func TestQueryMatchesSequentialReference(t *testing.T) {
	g := testGraph(t)
	_, ts := startServer(t, server.Config{Graphs: map[string]*graphit.Graph{"road": g}})
	ids := allVertices(g)

	ref, err := algo.Dijkstra(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	status, resp := postQuery(t, ts, server.Query{
		Algo: "sssp", Graph: "road", Src: 3, Strategy: "lazy", Delta: 64, Vertices: ids,
	})
	if status != 200 || resp.Fallback || resp.Error != "" {
		t.Fatalf("status %d, resp %+v", status, resp)
	}
	if resp.Breaker != "closed" || resp.Stats == nil || resp.Stats.Rounds == 0 {
		t.Fatalf("healthy query metadata wrong: %+v", resp)
	}
	wantValues(t, resp, ids, ref)

	// Pair query: dist reported for dst only.
	status, resp = postQuery(t, ts, server.Query{Algo: "ppsp", Graph: "road", Src: 3, Dst: 255})
	if status != 200 || resp.PairDist == nil || *resp.PairDist != ref[255] {
		t.Fatalf("ppsp: status %d resp %+v, want dist %d", status, resp, ref[255])
	}

	// k-core on the same (symmetric) graph.
	coreRef, err := algo.RefKCore(g)
	if err != nil {
		t.Fatal(err)
	}
	status, resp = postQuery(t, ts, server.Query{
		Algo: "kcore", Graph: "road", Strategy: "lazy_constant_sum", Vertices: ids,
	})
	if status != 200 {
		t.Fatalf("kcore status %d: %s", status, resp.Error)
	}
	wantValues(t, resp, ids, coreRef)
}

func TestValidationRejectsBeforeAdmission(t *testing.T) {
	rmat, err := graphit.RMAT(graphit.DefaultRMAT(6, 4, 1)) // not symmetric
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startServer(t, server.Config{
		Graphs: map[string]*graphit.Graph{"road": testGraph(t), "rmat": rmat},
	})
	cases := []struct {
		name string
		q    server.Query
		frag string // must appear in the error
	}{
		{"unknown algo", server.Query{Algo: "pagerank", Graph: "road"}, "valid: sssp"},
		{"unknown graph", server.Query{Algo: "sssp", Graph: "nope"}, `unknown graph "nope"`},
		{"unknown strategy", server.Query{Algo: "sssp", Graph: "road", Strategy: "eager"}, "valid: eager_with_fusion"},
		{"unknown direction", server.Query{Algo: "sssp", Graph: "road", Direction: "Sideways"}, "valid: SparsePush"},
		{"asymmetric kcore", server.Query{Algo: "kcore", Graph: "rmat"}, "symmetrized"},
		{"src out of range", server.Query{Algo: "sssp", Graph: "road", Src: 9999}, "out of range"},
		{"missing dst", server.Query{Algo: "ppsp", Graph: "road", Src: 0, Dst: 70000}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, resp := postQuery(t, ts, tc.q)
			if status != 400 {
				t.Fatalf("status %d, want 400 (resp %+v)", status, resp)
			}
			if !strings.Contains(resp.Error, tc.frag) {
				t.Fatalf("error %q missing %q", resp.Error, tc.frag)
			}
		})
	}
}

// gateHook returns a BaseContext that blocks every round-2 relax phase on
// gate — a deterministic way to hold a query in flight (the round watchdog
// must be configured far above the test's duration).
func gateHook(gate <-chan struct{}) func(context.Context) context.Context {
	hook := func(phase string, round int64, _ int) {
		if phase == core.PhaseRelax && round == 2 {
			<-gate
		}
	}
	return func(ctx context.Context) context.Context {
		return core.WithFaultHook(ctx, hook)
	}
}

func TestAdmissionShedsOverloadWith429(t *testing.T) {
	gate := make(chan struct{})
	srv, ts := startServer(t, server.Config{
		MaxConcurrent: 1,
		QueueDepth:    1,
		RoundTimeout:  time.Minute,
		MaxBudget:     time.Minute,
		DefaultBudget: 30 * time.Second,
		BaseContext:   gateHook(gate),
	})
	q := server.Query{Algo: "sssp", Graph: "road", Src: 0}

	// First query occupies the only run slot (blocked at its round-2 gate).
	type result struct {
		status int
		resp   *server.Response
	}
	first := make(chan result, 1)
	go func() {
		st, resp := postQuery(t, ts, q)
		first <- result{st, resp}
	}()
	waitFor(t, "first query in flight", func() bool { return srv.InFlight() == 1 })

	// Second query fills the bounded queue.
	second := make(chan result, 1)
	go func() {
		st, resp := postQuery(t, ts, q)
		second <- result{st, resp}
	}()
	waitFor(t, "second query queued", func() bool { return statusOf(t, ts).Admission.Queued == 1 })

	// Third query overflows: shed fast with 429 + Retry-After.
	body, _ := json.Marshal(q)
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if st := statusOf(t, ts); st.Admission.Shed != 1 {
		t.Fatalf("admission status %+v, want shed=1", st.Admission)
	}

	// Releasing the gate lets both held queries complete successfully.
	close(gate)
	for name, ch := range map[string]chan result{"first": first, "second": second} {
		r := <-ch
		if r.status != 200 || r.resp.Error != "" {
			t.Fatalf("%s query: status %d, error %q", name, r.status, r.resp.Error)
		}
	}
}

func TestBudgetMapsToDeadline(t *testing.T) {
	in := faults.New(faults.Trigger{
		Phase: core.PhaseRelaxChunk, Delay: 50 * time.Millisecond, Repeat: true,
	})
	_, ts := startServer(t, server.Config{
		RoundTimeout: time.Minute,
		BaseContext:  in.Context,
	})
	// Every relax chunk stalls 50ms; a 60ms budget exhausts mid-run.
	status, resp := postQuery(t, ts, server.Query{
		Algo: "sssp", Graph: "road", Src: 0, BudgetMS: 60,
	})
	if status != 504 {
		t.Fatalf("status %d, want 504 (resp %+v)", status, resp)
	}
	if !strings.Contains(resp.Error, "budget exhausted") {
		t.Fatalf("error %q, want budget exhausted", resp.Error)
	}
	if resp.Stats == nil {
		t.Fatal("504 response lost the partial stats")
	}
}

func TestFaultTripsBreakerAndFallbackAnswers(t *testing.T) {
	g := testGraph(t)
	ref, err := algo.Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Panic on every relax chunk of rounds 1-3 — enough to fault every
	// parallel attempt while letting the serial-retry fallback converge.
	inject := func(ctx context.Context) context.Context {
		in := faults.New(faults.Trigger{
			Phase:      core.PhaseRelaxChunk,
			Match:      func(r int64) bool { return r <= 3 },
			Repeat:     true,
			PanicValue: "hostile edge function",
		})
		return in.Context(ctx)
	}
	_, ts := startServer(t, server.Config{
		Graphs:           map[string]*graphit.Graph{"road": g},
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // stays open for the test's duration
		BaseContext:      inject,
	})
	ids := allVertices(g)
	q := server.Query{Algo: "sssp", Graph: "road", Src: 0, Vertices: ids}

	// Fault 1: primary panics, the answer transparently comes from the
	// fallback schedule and still matches the reference.
	status, resp := postQuery(t, ts, q)
	if status != 200 || !resp.Fallback || resp.FaultKind != graphit.FaultKindPanic {
		t.Fatalf("fault 1: status %d resp %+v", status, resp)
	}
	wantValues(t, resp, ids, ref)
	if resp.Breaker != "closed" {
		t.Fatalf("breaker %q after 1 fault, want closed (threshold 2)", resp.Breaker)
	}

	// Fault 2 trips the breaker.
	status, resp = postQuery(t, ts, q)
	if status != 200 || resp.Breaker != "open" {
		t.Fatalf("fault 2: status %d breaker %q, want open", status, resp.Breaker)
	}

	// Open breaker: served directly by the fallback, no primary attempt —
	// so no fault kind, but still the right answer.
	status, resp = postQuery(t, ts, q)
	if status != 200 || !resp.Fallback || resp.FaultKind != "" {
		t.Fatalf("open-breaker query: status %d resp.Fallback=%v resp.FaultKind=%q", status, resp.Fallback, resp.FaultKind)
	}
	wantValues(t, resp, ids, ref)

	// The tripped key is visible in /statusz; an untouched key is not open.
	st := statusOf(t, ts)
	found := false
	for _, br := range st.Breakers {
		if br.Key == "sssp/eager_with_fusion" {
			found = true
			if br.State != "open" || br.Trips != 1 || br.Fallbacks < 2 {
				t.Fatalf("breaker status %+v", br)
			}
		}
	}
	if !found {
		t.Fatalf("sssp/eager_with_fusion not in statusz: %+v", st.Breakers)
	}

	// A different strategy key still runs its primary (and faults its own
	// breaker count) — keys are independent.
	status, resp = postQuery(t, ts, server.Query{Algo: "sssp", Graph: "road", Src: 0, Strategy: "lazy", Vertices: ids})
	if status != 200 || resp.FaultKind != graphit.FaultKindPanic {
		t.Fatalf("independent key: status %d resp %+v", status, resp)
	}
	wantValues(t, resp, ids, ref)
}

func statusOf(t testing.TB, ts *httptest.Server) server.Status {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
