package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graphit"
	"graphit/internal/graph"
	"graphit/internal/server"
)

// lineGraph builds the directed weighted path 0 -> 1 (w 5) -> 2 (w 10) —
// mutable (not symmetric), so /update batches are accepted.
func lineGraph(t testing.TB) *graphit.Graph {
	t.Helper()
	g, err := graph.Build([]graph.Edge{
		{Src: 0, Dst: 1, W: 5}, {Src: 1, Dst: 2, W: 10},
	}, graph.BuildOptions{NumVertices: 3, Weighted: true, InEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// postUpdate sends body to /update and decodes the reply.
func postUpdate(t testing.TB, ts *httptest.Server, body string) (int, *server.UpdateResponse) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/update", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /update: %v", err)
	}
	defer resp.Body.Close()
	var out server.UpdateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode update response: %v", err)
	}
	return resp.StatusCode, &out
}

// TestUpdateEndToEnd drives the full mutate-then-query loop over HTTP with
// the result cache enabled: the pre-batch answer is served (and cached) at
// epoch 0, a reweight batch advances to epoch 1, and the identical query
// then returns the new answer at the new epoch — the cached epoch-0 answer
// must be unreachable.
func TestUpdateEndToEnd(t *testing.T) {
	srv, ts := startServer(t, server.Config{
		Graphs:       map[string]*graphit.Graph{"line": lineGraph(t)},
		Mutable:      true,
		CacheEntries: 64,
		Metrics:      true,
	})
	defer shutdown(t, srv)
	q := server.Query{Algo: "sssp", Graph: "line", Src: 0, Vertices: []uint32{2}}

	code, resp := postQuery(t, ts, q)
	if code != 200 || resp.Values["2"] != 15 || resp.Epoch != 0 {
		t.Fatalf("pre-batch query: code %d epoch %d values %v", code, resp.Epoch, resp.Values)
	}
	code, resp = postQuery(t, ts, q)
	if code != 200 || !resp.Cached {
		t.Fatalf("identical query not cached: code %d %+v", code, resp)
	}

	code, up := postUpdate(t, ts, `{"graph":"line","ops":[{"op":"reweight","src":1,"dst":2,"w":2}]}`)
	if code != 200 {
		t.Fatalf("update: code %d error %q", code, up.Error)
	}
	if up.Epoch != 1 || up.Applied != 1 || up.OverlayOps != 1 {
		t.Fatalf("update response: %+v", up)
	}

	code, resp = postQuery(t, ts, q)
	if code != 200 {
		t.Fatalf("post-batch query: code %d", code)
	}
	if resp.Cached {
		t.Fatal("post-batch query served the pre-batch cached answer — stale across epochs")
	}
	if resp.Values["2"] != 7 || resp.Epoch != 1 {
		t.Fatalf("post-batch query: epoch %d values %v, want epoch 1 value 7", resp.Epoch, resp.Values)
	}

	// /metrics reflects the epoch advance and the applied batch.
	mr, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mr.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`livegraph_epoch{graph="line"} 1`,
		`livegraph_batches_total{graph="line"} 1`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// /statusz carries the live-graph section.
	sr, err := ts.Client().Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var st server.Status
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Mutable || len(st.Live) != 1 || st.Live[0].Name != "line" || st.Live[0].Epoch != 1 {
		t.Fatalf("statusz live section: mutable=%v live=%+v", st.Mutable, st.Live)
	}
}

// TestUpdateErrorTaxonomy pins the /update failure contract end to end:
// each rejection class maps to its documented status code, and backpressure
// rejections carry Retry-After.
func TestUpdateErrorTaxonomy(t *testing.T) {
	srv, ts := startServer(t, server.Config{
		Graphs: map[string]*graphit.Graph{
			"line": lineGraph(t),
			"road": testGraph(t), // symmetric -> immutable
		},
		Mutable:       true,
		MaxBatchOps:   2,
		MaxOverlayOps: 3,
	})
	defer shutdown(t, srv)

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{"graph":`, 400},
		{"unknown field", `{"graph":"line","opz":[]}`, 400},
		{"trailing garbage", `{"graph":"line","ops":[{"op":"add","src":0,"dst":2,"w":1}]} extra`, 400},
		{"missing graph", `{"ops":[{"op":"add","src":0,"dst":2,"w":1}]}`, 400},
		{"empty batch", `{"graph":"line","ops":[]}`, 400},
		{"unknown op", `{"graph":"line","ops":[{"op":"upsert","src":0,"dst":2}]}`, 400},
		{"negative weight", `{"graph":"line","ops":[{"op":"add","src":0,"dst":2,"w":-1}]}`, 400},
		{"unknown graph", `{"graph":"nope","ops":[{"op":"add","src":0,"dst":2,"w":1}]}`, 404},
		{"add existing edge", `{"graph":"line","ops":[{"op":"add","src":0,"dst":1,"w":1}]}`, 400},
		{"vertex out of range", `{"graph":"line","ops":[{"op":"add","src":0,"dst":99,"w":1}]}`, 400},
		{"batch over cap", `{"graph":"line","ops":[{"op":"add","src":0,"dst":2,"w":1},{"op":"reweight","src":0,"dst":1,"w":2},{"op":"reweight","src":1,"dst":2,"w":2}]}`, 400},
		{"immutable graph", `{"graph":"road","ops":[{"op":"add","src":0,"dst":2,"w":1}]}`, 409},
	}
	for _, tc := range cases {
		if code, resp := postUpdate(t, ts, tc.body); code != tc.want || resp.Error == "" {
			t.Errorf("%s: code %d (want %d), error %q", tc.name, code, tc.want, resp.Error)
		}
	}

	// Overlay backpressure: MaxOverlayOps 3 admits three single-op batches,
	// then rejects with 429 + Retry-After (the compactor is not racing — the
	// wake threshold is far above 3).
	for i, body := range []string{
		`{"graph":"line","ops":[{"op":"reweight","src":0,"dst":1,"w":6}]}`,
		`{"graph":"line","ops":[{"op":"reweight","src":0,"dst":1,"w":7}]}`,
		`{"graph":"line","ops":[{"op":"reweight","src":0,"dst":1,"w":8}]}`,
	} {
		if code, resp := postUpdate(t, ts, body); code != 200 {
			t.Fatalf("fill batch %d: code %d error %q", i, code, resp.Error)
		}
	}
	req, err := ts.Client().Post(ts.URL+"/update", "application/json",
		strings.NewReader(`{"graph":"line","ops":[{"op":"reweight","src":0,"dst":1,"w":9}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer req.Body.Close()
	if req.StatusCode != 429 {
		t.Fatalf("overlay-full batch: code %d, want 429", req.StatusCode)
	}
	if req.Header.Get("Retry-After") == "" {
		t.Fatal("429 overlay backpressure without Retry-After")
	}
}

// TestUpdateReadOnlyServer: without -mutable, batches are rejected with 403
// before touching the graph, and queries still work.
func TestUpdateReadOnlyServer(t *testing.T) {
	srv, ts := startServer(t, server.Config{
		Graphs: map[string]*graphit.Graph{"line": lineGraph(t)},
	})
	defer shutdown(t, srv)
	code, resp := postUpdate(t, ts, `{"graph":"line","ops":[{"op":"reweight","src":1,"dst":2,"w":2}]}`)
	if code != 403 || !strings.Contains(resp.Error, "read-only") {
		t.Fatalf("read-only update: code %d error %q", code, resp.Error)
	}
	if code, q := postQuery(t, ts, server.Query{Algo: "sssp", Graph: "line", Src: 0, Vertices: []uint32{2}}); code != 200 || q.Values["2"] != 15 {
		t.Fatalf("read-only query: code %d values %v", code, q.Values)
	}
}

// TestUpdateDuringDrain: a draining server rejects batches with 503 and
// Retry-After, like /query.
func TestUpdateDuringDrain(t *testing.T) {
	srv, ts := startServer(t, server.Config{
		Graphs:  map[string]*graphit.Graph{"line": lineGraph(t)},
		Mutable: true,
	})
	shutdown(t, srv)
	resp, err := ts.Client().Post(ts.URL+"/update", "application/json",
		strings.NewReader(`{"graph":"line","ops":[{"op":"reweight","src":1,"dst":2,"w":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("update during drain: code %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 during drain without Retry-After")
	}
}

func shutdown(t testing.TB, srv *server.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
