package server

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"

	"graphit/algo"
)

// TestRetryAfterFlooring pins the Retry-After base arithmetic: one default
// budget, in whole seconds, never below 1 — and the pipeline's 2s default
// when the config leaves the budget zero.
func TestRetryAfterFlooring(t *testing.T) {
	cases := []struct {
		budget time.Duration
		want   int64
	}{
		{0, 2},                      // unset -> pipeline default (2s)
		{500 * time.Millisecond, 1}, // sub-second -> floored at 1
		{time.Second, 1},
		{5 * time.Second, 5},
		{2500 * time.Millisecond, 2}, // truncated, not rounded
	}
	for _, tc := range cases {
		s := &Server{cfg: Config{DefaultBudget: tc.budget}}
		if got := s.retryBase(); got != tc.want {
			t.Errorf("retryBase with budget %v = %d, want %d", tc.budget, got, tc.want)
		}
	}
}

// TestRetryAfterJitterBounds pins the jitter contract: every rendered value
// is a whole second in [base, 2*base], and the values actually spread (a
// constant header would re-synchronize rejected clients into a stampede).
func TestRetryAfterJitterBounds(t *testing.T) {
	s := &Server{cfg: Config{DefaultBudget: 5 * time.Second}}
	base := s.retryBase()
	seen := make(map[string]bool)
	for i := 0; i < 500; i++ {
		got := s.retryAfter()
		sec, err := strconv.ParseInt(got, 10, 64)
		if err != nil {
			t.Fatalf("retryAfter returned a non-integer %q: %v", got, err)
		}
		if sec < base || sec > 2*base {
			t.Fatalf("retryAfter = %d, outside [%d, %d]", sec, base, 2*base)
		}
		seen[got] = true
	}
	if len(seen) < 2 {
		t.Fatalf("500 draws produced %d distinct values — jitter is not jittering", len(seen))
	}
}

// TestResponseZeroFidelity locks the wire fidelity the pointer summary
// fields exist for: a legitimate zero answer (reached=0, max_value=0,
// cover_size=0) is encoded explicitly, and fields a result kind does not
// produce stay absent instead of appearing as zeros.
func TestResponseZeroFidelity(t *testing.T) {
	zero, zero64 := 0, int64(0)
	resp := &Response{
		Algo: "sssp", Graph: "road", Strategy: "lazy",
		Summary: algo.Summary{Reached: &zero, MaxValue: &zero64},
	}
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)
	for _, want := range []string{`"reached":0`, `"max_value":0`} {
		if !strings.Contains(body, want) {
			t.Errorf("zero answer dropped from the wire: %s missing in %s", want, body)
		}
	}
	// Kind-inapplicable fields (nil pointers) must not materialize.
	for _, absent := range []string{`"pair_dist"`, `"cover_size"`} {
		if strings.Contains(body, absent) {
			t.Errorf("inapplicable field %s encoded in %s", absent, body)
		}
	}

	// The pair kind's "unreachable" (nil) is distinguishable from a real
	// zero-length path.
	pair := &Response{Summary: algo.Summary{PairDist: &zero64}}
	b, err = json.Marshal(pair)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"pair_dist":0`) {
		t.Errorf("zero pair_dist dropped from the wire: %s", b)
	}
}
