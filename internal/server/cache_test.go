package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"graphit/internal/server"
)

// postRaw sends q to /query and returns the status plus the raw response
// body — the cache tests compare wire bytes, not decoded structs.
func postRaw(t testing.TB, ts *httptest.Server, q server.Query) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// normalize re-encodes a response body with its volatile fields removed:
// elapsed_ms varies per request, cached/coalesced mark the serving path
// (the thing under test, asserted separately), stats describe the producing
// run, and breaker is refreshed at read time. Everything else — the answer
// — must be identical between a cached response and the original.
func normalize(t testing.TB, raw []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal %s: %v", raw, err)
	}
	for _, k := range []string{"elapsed_ms", "cached", "coalesced", "stats", "breaker"} {
		delete(m, k)
	}
	out, err := json.Marshal(m) // map keys marshal sorted: stable bytes
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestCacheCorrectness proves the cache serves byte-identical answers for
// repeated identical queries — and never serves an answer across different
// vertices selections, which are distinct cache keys.
func TestCacheCorrectness(t *testing.T) {
	_, ts := startServer(t, server.Config{
		CacheEntries: 64,
		CacheTTL:     time.Minute,
	})
	full := server.Query{Algo: "sssp", Graph: "road", Src: 0, Vertices: []uint32{0, 1, 2, 3, 4, 5, 6, 7}}

	status, first := postRaw(t, ts, full)
	if status != 200 {
		t.Fatalf("first query: status %d: %s", status, first)
	}
	status, second := postRaw(t, ts, full)
	if status != 200 {
		t.Fatalf("second query: status %d: %s", status, second)
	}
	var marker struct {
		Cached bool `json:"cached"`
	}
	if err := json.Unmarshal(first, &marker); err != nil || marker.Cached {
		t.Fatalf("first response already marked cached: %s", first)
	}
	if err := json.Unmarshal(second, &marker); err != nil || !marker.Cached {
		t.Fatalf("second identical query not served from cache: %s", second)
	}
	if a, b := normalize(t, first), normalize(t, second); a != b {
		t.Fatalf("cached response differs from the original:\n first: %s\nsecond: %s", a, b)
	}

	// A different vertices selection is a different key: it must miss, run,
	// and answer for exactly its own selection.
	sub := server.Query{Algo: "sssp", Graph: "road", Src: 0, Vertices: []uint32{9, 10, 11}}
	status, third := postRaw(t, ts, sub)
	if status != 200 {
		t.Fatalf("selection query: status %d: %s", status, third)
	}
	var sel struct {
		Cached bool             `json:"cached"`
		Values map[string]int64 `json:"values"`
	}
	if err := json.Unmarshal(third, &sel); err != nil {
		t.Fatal(err)
	}
	if sel.Cached {
		t.Fatalf("different selection served from cache: %s", third)
	}
	if len(sel.Values) != 3 {
		t.Fatalf("selection answered with %d values, want 3: %s", len(sel.Values), third)
	}
	for _, id := range []string{"9", "10", "11"} {
		if _, ok := sel.Values[id]; !ok {
			t.Fatalf("selection missing vertex %s: %s", id, third)
		}
	}
	// And the selection's own repeat is cached, byte-identical.
	_, fourth := postRaw(t, ts, sub)
	if err := json.Unmarshal(fourth, &marker); err != nil || !marker.Cached {
		t.Fatalf("repeated selection not served from cache: %s", fourth)
	}
	if a, b := normalize(t, third), normalize(t, fourth); a != b {
		t.Fatalf("cached selection differs from the original:\n first: %s\nsecond: %s", a, b)
	}
}
