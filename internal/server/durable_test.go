package server_test

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"graphit"
	"graphit/internal/faults"
	"graphit/internal/server"
	"graphit/internal/wal"
)

// durableConfig is the smallest durable server: one mutable line graph,
// fsync-per-ack, stores rooted at dir.
func durableConfig(t testing.TB, dir string) server.Config {
	return server.Config{
		Graphs:  map[string]*graphit.Graph{"line": lineGraph(t)},
		Mutable: true,
		DataDir: dir,
		WALSync: wal.SyncAlways,
		Metrics: true,
	}
}

// TestDurableUpdateSurvivesRestart is the end-to-end acceptance drill over
// HTTP: an acked POST /update must still be answered by queries after the
// server restarts over the same data dir with the original (pre-mutation)
// base graph.
func TestDurableUpdateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv, ts := startServer(t, durableConfig(t, dir))

	code, up := postUpdate(t, ts, `{"graph":"line","ops":[{"op":"reweight","src":1,"dst":2,"w":2}]}`)
	if code != 200 || up.Epoch != 1 {
		t.Fatalf("update: code %d %+v", code, up)
	}
	q := server.Query{Algo: "sssp", Graph: "line", Src: 0, Vertices: []uint32{2}}
	if code, resp := postQuery(t, ts, q); code != 200 || resp.Values["2"] != 7 || resp.Epoch != 1 {
		t.Fatalf("pre-restart query: code %d %+v", code, resp)
	}
	shutdown(t, srv)
	ts.Close()

	// Restart: same data dir, fresh base graph — the mutation must come
	// back from the checkpoint/WAL, not from memory.
	srv2, ts2 := startServer(t, durableConfig(t, dir))
	defer shutdown(t, srv2)

	info, ok := srv2.Recovery()["line"]
	if !ok || info.Epoch != 1 || info.Replayed+boolToInt64(info.FromCheckpoint) < 1 {
		t.Fatalf("recovery info = %+v ok=%v, want epoch 1", info, ok)
	}
	if code, resp := postQuery(t, ts2, q); code != 200 || resp.Values["2"] != 7 || resp.Epoch != 1 {
		t.Fatalf("post-restart query: code %d %+v", code, resp)
	}

	// The restarted server keeps accepting durable batches past the
	// recovered epoch.
	code, up = postUpdate(t, ts2, `{"graph":"line","ops":[{"op":"add","src":0,"dst":2,"w":1}]}`)
	if code != 200 || up.Epoch != 2 {
		t.Fatalf("post-restart update: code %d %+v", code, up)
	}
	if code, resp := postQuery(t, ts2, q); code != 200 || resp.Values["2"] != 1 || resp.Epoch != 2 {
		t.Fatalf("query after post-restart update: code %d %+v", code, resp)
	}

	// Observability: /statusz carries recovery + per-graph durability, and
	// /metrics exports the WAL series.
	st := statusOf(t, ts2)
	if st.Recovery == nil || st.Recovery["line"].Epoch != 1 {
		t.Fatalf("statusz recovery section: %+v", st.Recovery)
	}
	if len(st.Live) != 1 || st.Live[0].Durability == nil || st.Live[0].Durability.Appends < 1 {
		t.Fatalf("statusz durability section: %+v", st.Live)
	}
	mr, err := ts2.Client().Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	body, _ := io.ReadAll(mr.Body)
	for _, want := range []string{
		`wal_appends_total{graph="line"}`,
		`recovered_epoch{graph="line"} 1`,
		`wal_fsync_duration_seconds_count{graph="line"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func boolToInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// TestDurabilityFaultMapsTo503: a WAL fsync failure on the ack path nacks
// the batch with 503 (no Retry-After — a poisoned store does not heal) and
// keeps refusing subsequent batches while queries continue to serve.
func TestDurabilityFaultMapsTo503(t *testing.T) {
	inj := faults.New(faults.PanicAt(wal.PhaseFsync, 0, "injected EIO"))
	cfg := durableConfig(t, t.TempDir())
	cfg.WALFaultHook = inj.Hook()
	srv, ts := startServer(t, cfg)
	defer shutdown(t, srv)

	resp, err := ts.Client().Post(ts.URL+"/update", "application/json",
		strings.NewReader(`{"graph":"line","ops":[{"op":"reweight","src":1,"dst":2,"w":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var up server.UpdateResponse
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 503 || !strings.Contains(up.Error, "durab") {
		t.Fatalf("faulted update: code %d error %q, want 503 durability error", resp.StatusCode, up.Error)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		t.Fatalf("durability 503 carries Retry-After %q; poisoned stores do not heal", ra)
	}
	// Poisoned: the next batch is refused too.
	if code, up := postUpdate(t, ts, `{"graph":"line","ops":[{"op":"reweight","src":1,"dst":2,"w":3}]}`); code != 503 {
		t.Fatalf("post-poison update: code %d %+v, want 503", code, up)
	}
	// Reads keep serving. The nacked batch is visible in memory (commit
	// precedes the durable wait) — the client was told "not durable", not
	// "not applied"; a nack is indeterminate, exactly like a timed-out
	// write to any replicated store. What poisoning guarantees is that no
	// FURTHER batch widens the gap between memory and the log.
	q := server.Query{Algo: "sssp", Graph: "line", Src: 0, Vertices: []uint32{2}}
	if code, resp := postQuery(t, ts, q); code != 200 || resp.Epoch != 1 {
		t.Fatalf("query on poisoned store: code %d %+v", code, resp)
	}
}

// TestRecoveringHandler pins the boot-gating contract graphd relies on:
// liveness ok, readiness 503 "recovering", everything else 503 JSON.
func TestRecoveringHandler(t *testing.T) {
	ts := httptest.NewServer(server.RecoveringHandler())
	defer ts.Close()
	defer ts.Client().CloseIdleConnections()

	hr, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != 200 {
		t.Fatalf("/healthz during recovery: %d, want 200", hr.StatusCode)
	}
	rr, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	if rr.StatusCode != 503 || !strings.Contains(string(body), "recovering") {
		t.Fatalf("/readyz during recovery: %d %q, want 503 recovering", rr.StatusCode, body)
	}
	qr, err := ts.Client().Post(ts.URL+"/query", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	qr.Body.Close()
	if qr.StatusCode != 503 {
		t.Fatalf("/query during recovery: %d, want 503", qr.StatusCode)
	}
}

// TestReadOnlyServerHasNoDurabilityState: with -mutable off, DataDir is
// ignored — no WAL files appear and /statusz carries no durability or
// recovery sections (the zero-overhead guarantee).
func TestReadOnlyServerHasNoDurabilityState(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	cfg.Mutable = false
	srv, ts := startServer(t, cfg)
	defer shutdown(t, srv)

	st := statusOf(t, ts)
	if st.Recovery != nil {
		t.Fatalf("read-only server reports recovery: %+v", st.Recovery)
	}
	if len(st.Live) != 1 || st.Live[0].Durability != nil {
		t.Fatalf("read-only server reports durability: %+v", st.Live)
	}
	if ents, err := os.ReadDir(dir); err != nil || len(ents) != 0 {
		t.Fatalf("read-only server created files under DataDir: %v (%v)", ents, err)
	}
}
