package algo

import (
	"strconv"

	"graphit"
)

// Summary is the canonical, transport-agnostic result summary of one query
// — the shape the serving layers cache, coalesce, and encode. It lives next
// to QueryResult so every transport (HTTP today, anything else tomorrow)
// reports the same fields with the same semantics.
//
// Result-kind fields are pointers so a legitimate zero stays distinguishable
// from "not reported by this result kind": nil means the kind does not
// produce the field, a non-nil zero is a real answer (a source whose only
// reachable vertex is itself reports reached=0 over the other vertices'
// values, a uniformly-zero vector reports max_value=0).
type Summary struct {
	// Reached counts vertices whose value is not Unreached, the source
	// included (KindDist, KindCoreness).
	Reached *int `json:"reached,omitempty"`
	// MaxValue is the maximum value over reached vertices; 0 when the
	// reached set is empty (KindDist, KindCoreness).
	MaxValue *int64 `json:"max_value,omitempty"`
	// PairDist is the src→dst distance (KindPair); nil when dst is
	// unreachable — "no path" is a different answer than distance 0.
	PairDist *int64 `json:"pair_dist,omitempty"`
	// CoverSize is the number of chosen sets (KindCover).
	CoverSize *int `json:"cover_size,omitempty"`
	// Values holds the explicitly requested per-vertex values, keyed by
	// decimal vertex id.
	Values map[string]int64 `json:"values,omitempty"`
}

// Summarize renders res into the kind-appropriate Summary. dst selects the
// reported pair for KindPair; vertices asks for individual values (callers
// must have bounds-checked them against the graph).
func Summarize(sp *Spec, res *QueryResult, dst graphit.VertexID, vertices []uint32) Summary {
	var sum Summary
	switch sp.Kind {
	case KindCover:
		n := res.NumChosen
		sum.CoverSize = &n
	case KindPair:
		if int(dst) < len(res.Values) && res.Values[dst] != graphit.Unreached {
			d := res.Values[dst]
			sum.PairDist = &d
		}
	default: // KindDist, KindCoreness
		reached, maxValue := 0, int64(0)
		for _, v := range res.Values {
			if v != graphit.Unreached {
				reached++
				if v > maxValue {
					maxValue = v
				}
			}
		}
		sum.Reached = &reached
		sum.MaxValue = &maxValue
	}
	if len(vertices) > 0 && res.Values != nil {
		sum.Values = make(map[string]int64, len(vertices))
		for _, v := range vertices {
			sum.Values[strconv.FormatUint(uint64(v), 10)] = res.Values[v]
		}
	}
	return sum
}
