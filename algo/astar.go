package algo

import (
	"context"
	"fmt"
	"math"

	"graphit"
)

// AStarResult carries the output of an A* run.
type AStarResult struct {
	// Dist[v] is the discovered distance from src to v (graphit.Unreached
	// if never relaxed); Dist[dst] is the shortest src→dst distance when a
	// path exists.
	Dist []int64
	// Estimate[v] is the priority vector: Dist[v] + h(v), where h is the
	// Euclidean-distance heuristic to dst.
	Estimate []int64
	Stats    graphit.Stats
}

// AStar finds the shortest src→dst path using A* search (paper §6.1): the
// priority of a vertex is its discovered distance plus a Euclidean
// lower-bound estimate of the remaining distance to dst, computed from the
// graph's vertex coordinates. The heuristic is consistent for graphs whose
// weights are at least the Euclidean distance between their endpoints
// (true of the generated road networks), so with ∆=1 the result is exact;
// with priority coarsening small inversions are tolerated as in the paper.
func AStar(g *graphit.Graph, src, dst graphit.VertexID, sched graphit.Schedule) (*AStarResult, error) {
	return AStarContext(context.Background(), g, src, dst, sched)
}

// AStarContext is AStar under a context, returning the partial result and
// ctx.Err() on cancellation.
func AStarContext(ctx context.Context, g *graphit.Graph, src, dst graphit.VertexID, sched graphit.Schedule) (*AStarResult, error) {
	if err := checkWeighted(g); err != nil {
		return nil, err
	}
	if !g.HasCoords() {
		return nil, fmt.Errorf("algo: A* requires vertex coordinates")
	}
	n := g.NumVertices()
	target := g.Coord[dst]
	h := func(v graphit.VertexID) int64 {
		dx := float64(g.Coord[v].X - target.X)
		dy := float64(g.Coord[v].Y - target.Y)
		return int64(math.Sqrt(dx*dx + dy*dy))
	}
	dist := initDist(n, src)
	est := make([]int64, n)
	for i := range est {
		est[i] = graphit.Unreached
	}
	est[src] = h(src)

	op := &graphit.Ordered{
		G:     g,
		Prio:  est,
		Order: graphit.LowerFirst,
		// The UDF maintains dist as auxiliary data with an explicit atomic
		// relaxation (the compiler-inserted writeMin of paper §5.1) and
		// drives the priority queue with the f = dist + h estimate.
		Apply: func(s, d graphit.VertexID, w graphit.Weight, q *graphit.Queue) {
			nd := graphit.AtomicLoad(&dist[s]) + int64(w)
			if graphit.WriteMin(&dist[d], nd) {
				q.UpdatePriorityMin(d, nd+h(d))
			}
		},
		Sources: []graphit.VertexID{src},
		Stop: func(cur int64) bool {
			best := graphit.AtomicLoad(&dist[dst])
			// f(dst) = dist(dst) since h(dst) = 0: once the current bucket's
			// priority reaches the best found distance, dst is finalized.
			return best != graphit.Unreached && cur >= best
		},
	}
	st, err := graphit.RunOrderedContext(ctx, op, sched)
	if err != nil {
		if halted(ctx, err) {
			return &AStarResult{Dist: dist, Estimate: est, Stats: st}, err
		}
		return nil, err
	}
	return &AStarResult{Dist: dist, Estimate: est, Stats: st}, nil
}
