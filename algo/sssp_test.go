package algo

import (
	"fmt"
	"testing"

	"graphit"
)

// testGraphs returns small deterministic graphs spanning the paper's two
// structural classes: a power-law R-MAT graph and a large-diameter road
// grid.
func testGraphs(t *testing.T) map[string]*graphit.Graph {
	t.Helper()
	rmat, err := graphit.RMAT(graphit.DefaultRMAT(10, 8, 42))
	if err != nil {
		t.Fatalf("RMAT: %v", err)
	}
	road, err := graphit.RoadGrid(graphit.RoadOptions{
		Rows: 40, Cols: 40, DeleteFrac: 0.1, DiagFrac: 0.05, Seed: 7,
	})
	if err != nil {
		t.Fatalf("RoadGrid: %v", err)
	}
	return map[string]*graphit.Graph{"rmat": rmat, "road": road}
}

// allSchedules enumerates every (strategy, direction, delta) combination
// that is valid for min-priority algorithms.
func allSchedules() map[string]graphit.Schedule {
	base := graphit.DefaultSchedule()
	return map[string]graphit.Schedule{
		"eager_fusion_d1":   base.ConfigApplyPriorityUpdate("eager_with_fusion"),
		"eager_fusion_d16":  base.ConfigApplyPriorityUpdate("eager_with_fusion").ConfigApplyPriorityUpdateDelta(16),
		"eager_nofuse_d16":  base.ConfigApplyPriorityUpdate("eager_no_fusion").ConfigApplyPriorityUpdateDelta(16),
		"eager_pull_d16":    base.ConfigApplyPriorityUpdate("eager_no_fusion").ConfigApplyPriorityUpdateDelta(16).ConfigApplyDirection("DensePull"),
		"lazy_push_d16":     base.ConfigApplyPriorityUpdate("lazy").ConfigApplyPriorityUpdateDelta(16),
		"lazy_push_d1":      base.ConfigApplyPriorityUpdate("lazy"),
		"lazy_pull_d16":     base.ConfigApplyPriorityUpdate("lazy").ConfigApplyPriorityUpdateDelta(16).ConfigApplyDirection("DensePull"),
		"lazy_smallwindow":  base.ConfigApplyPriorityUpdate("lazy").ConfigApplyPriorityUpdateDelta(4).ConfigNumBuckets(8),
		"eager_smallfusion": base.ConfigApplyPriorityUpdate("eager_with_fusion").ConfigApplyPriorityUpdateDelta(64).ConfigBucketFusionThreshold(4),
		"lazy_hybrid_d16":   base.ConfigApplyPriorityUpdate("lazy").ConfigApplyPriorityUpdateDelta(16).ConfigApplyDirection("DensePull-SparsePush"),
		"lazy_nodedup_d16":  base.ConfigApplyPriorityUpdate("lazy").ConfigApplyPriorityUpdateDelta(16).ConfigDeduplication(false),
	}
}

func TestSSSPMatchesDijkstraAcrossSchedules(t *testing.T) {
	for gname, g := range testGraphs(t) {
		src := graphit.VertexID(1)
		want, err := Dijkstra(g, src)
		if err != nil {
			t.Fatalf("%s: Dijkstra: %v", gname, err)
		}
		for sname, sched := range allSchedules() {
			t.Run(fmt.Sprintf("%s/%s", gname, sname), func(t *testing.T) {
				got, err := SSSP(g, src, sched)
				if err != nil {
					t.Fatalf("SSSP: %v", err)
				}
				diffs := 0
				for v := range want {
					if got.Dist[v] != want[v] {
						diffs++
						if diffs <= 5 {
							t.Errorf("dist[%d] = %d, want %d", v, got.Dist[v], want[v])
						}
					}
				}
				if diffs > 0 {
					t.Fatalf("%d of %d distances differ", diffs, len(want))
				}
				if got.Stats.Rounds == 0 {
					t.Error("expected at least one round")
				}
			})
		}
	}
}

func TestSSSPApproxMatchesDijkstra(t *testing.T) {
	for gname, g := range testGraphs(t) {
		src := graphit.VertexID(1)
		want, err := Dijkstra(g, src)
		if err != nil {
			t.Fatalf("%s: Dijkstra: %v", gname, err)
		}
		got, err := SSSPApprox(g, src, graphit.DefaultSchedule().ConfigApplyPriorityUpdateDelta(8))
		if err != nil {
			t.Fatalf("%s: SSSPApprox: %v", gname, err)
		}
		// Approximate ordering reorders work but runs until no relaxation
		// applies, so final distances are exact.
		for v := range want {
			if got.Dist[v] != want[v] {
				t.Fatalf("%s: dist[%d] = %d, want %d", gname, v, got.Dist[v], want[v])
			}
		}
	}
}

func TestBellmanFordMatchesDijkstra(t *testing.T) {
	for gname, g := range testGraphs(t) {
		src := graphit.VertexID(3)
		want, err := Dijkstra(g, src)
		if err != nil {
			t.Fatalf("%s: Dijkstra: %v", gname, err)
		}
		got, err := BellmanFord(g, src)
		if err != nil {
			t.Fatalf("%s: BellmanFord: %v", gname, err)
		}
		for v := range want {
			if got.Dist[v] != want[v] {
				t.Fatalf("%s: dist[%d] = %d, want %d", gname, v, got.Dist[v], want[v])
			}
		}
	}
}

func TestWBFSForcesUnitDelta(t *testing.T) {
	g := testGraphs(t)["rmat"]
	src := graphit.VertexID(1)
	want, err := Dijkstra(g, src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := WBFS(g, src, graphit.DefaultSchedule().ConfigApplyPriorityUpdateDelta(1024))
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got.Dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got.Dist[v], want[v])
		}
	}
}

func TestPPSPEarlyTermination(t *testing.T) {
	for gname, g := range testGraphs(t) {
		src, dst := graphit.VertexID(1), graphit.VertexID(uint32(g.NumVertices()-2))
		want, err := Dijkstra(g, src)
		if err != nil {
			t.Fatal(err)
		}
		full, err := SSSP(g, src, graphit.DefaultSchedule().ConfigApplyPriorityUpdateDelta(16))
		if err != nil {
			t.Fatal(err)
		}
		got, err := PPSP(g, src, dst, graphit.DefaultSchedule().ConfigApplyPriorityUpdateDelta(16))
		if err != nil {
			t.Fatal(err)
		}
		if got.Dist[dst] != want[dst] {
			t.Fatalf("%s: ppsp dist = %d, want %d", gname, got.Dist[dst], want[dst])
		}
		if want[dst] != graphit.Unreached && got.Stats.Rounds > full.Stats.Rounds {
			t.Errorf("%s: early-terminating PPSP used more rounds (%d) than full SSSP (%d)",
				gname, got.Stats.Rounds, full.Stats.Rounds)
		}
	}
}

// TestHybridDirectionSwitches: on a dense social graph, the hybrid
// schedule's big rounds run in the pull direction; results stay exact.
func TestHybridDirectionSwitches(t *testing.T) {
	g := testGraphs(t)["rmat"]
	src := graphit.VertexID(1)
	res, err := SSSP(g, src, graphit.DefaultSchedule().
		ConfigApplyPriorityUpdate("lazy").
		ConfigApplyPriorityUpdateDelta(256).
		ConfigApplyDirection("DensePull-SparsePush"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PullRounds == 0 {
		t.Error("hybrid never pulled on a dense power-law graph")
	}
	if res.Stats.PullRounds >= res.Stats.Rounds {
		t.Error("hybrid never pushed (the first sparse rounds should push)")
	}
	want, err := Dijkstra(g, src)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], want[v])
		}
	}
}

// TestNoDedupStillCorrectButInsertsMore: disabling deduplication keeps
// results exact (extraction-time dedup) while performing at least as many
// bucket insertions.
func TestNoDedupStillCorrectButInsertsMore(t *testing.T) {
	g := testGraphs(t)["rmat"]
	src := graphit.VertexID(1)
	base := graphit.DefaultSchedule().ConfigApplyPriorityUpdate("lazy").ConfigApplyPriorityUpdateDelta(64)
	with, err := SSSP(g, src, base)
	if err != nil {
		t.Fatal(err)
	}
	without, err := SSSP(g, src, base.ConfigDeduplication(false))
	if err != nil {
		t.Fatal(err)
	}
	for v := range with.Dist {
		if with.Dist[v] != without.Dist[v] {
			t.Fatalf("dist[%d] differs: %d vs %d", v, with.Dist[v], without.Dist[v])
		}
	}
	if without.Stats.BucketInserts < with.Stats.BucketInserts {
		t.Errorf("no-dedup inserts %d < dedup inserts %d", without.Stats.BucketInserts, with.Stats.BucketInserts)
	}
}

// TestEagerRejectsHybrid: hybrid direction is a lazy-engine feature.
func TestEagerRejectsHybrid(t *testing.T) {
	g := testGraphs(t)["rmat"]
	_, err := SSSP(g, 0, graphit.DefaultSchedule().ConfigApplyDirection("DensePull-SparsePush"))
	if err == nil {
		t.Fatal("eager + hybrid accepted")
	}
}
