package algo

import (
	"fmt"
	"testing"

	"graphit"
)

func TestSetCoverCoversUniverse(t *testing.T) {
	for gname, g := range symGraphs(t) {
		for _, nb := range []int{128, 8} {
			t.Run(fmt.Sprintf("%s/window%d", gname, nb), func(t *testing.T) {
				res, err := SetCover(g, graphit.DefaultSchedule().ConfigNumBuckets(nb))
				if err != nil {
					t.Fatal(err)
				}
				n := g.NumVertices()
				// Validity: every element is covered, and covered by a set
				// that actually contains it and is in the cover.
				for e := 0; e < n; e++ {
					s := res.CoveredBy[e]
					if s < 0 {
						t.Fatalf("element %d uncovered", e)
					}
					if !res.Chosen[s] {
						t.Fatalf("element %d covered by unchosen set %d", e, s)
					}
					if !setContains(g, uint32(s), uint32(e)) {
						t.Fatalf("set %d does not contain element %d", s, e)
					}
				}
				if res.NumChosen == 0 || res.NumChosen > n {
					t.Fatalf("implausible cover size %d", res.NumChosen)
				}
			})
		}
	}
}

// setContains reports whether set s covers element e (s == e or e ∈ N(s)).
func setContains(g *graphit.Graph, s, e uint32) bool {
	if s == e {
		return true
	}
	for _, u := range g.OutNeigh(s) {
		if u == e {
			return true
		}
	}
	return false
}

func TestSetCoverNearGreedyQuality(t *testing.T) {
	for gname, g := range symGraphs(t) {
		res, err := SetCover(g, graphit.DefaultSchedule())
		if err != nil {
			t.Fatal(err)
		}
		_, greedy, err := GreedySetCover(g)
		if err != nil {
			t.Fatal(err)
		}
		// The bucketed nearly-independent algorithm commits sets covering
		// at least half the bucket's value, so its cost should stay within
		// a small constant factor of sequential greedy.
		if res.NumChosen > 4*greedy {
			t.Errorf("%s: parallel cover %d sets vs greedy %d (> 4x)", gname, res.NumChosen, greedy)
		}
		t.Logf("%s: parallel=%d greedy=%d rounds=%d", gname, res.NumChosen, greedy, res.Stats.Rounds)
	}
}

func TestGreedySetCoverIsValid(t *testing.T) {
	g := symGraphs(t)["rmat"]
	chosen, num, err := GreedySetCover(g)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	covered := make([]bool, n)
	cnt := 0
	for s := 0; s < n; s++ {
		if !chosen[s] {
			continue
		}
		cnt++
		if !covered[s] {
			covered[s] = true
		}
		for _, e := range g.OutNeigh(uint32(s)) {
			covered[e] = true
		}
	}
	if cnt != num {
		t.Fatalf("reported %d chosen, counted %d", num, cnt)
	}
	for e := 0; e < n; e++ {
		if !covered[e] {
			t.Fatalf("greedy left element %d uncovered", e)
		}
	}
}

func TestSetCoverRejectsCoarseningAndDirected(t *testing.T) {
	g := symGraphs(t)["rmat"]
	if _, err := SetCover(g, graphit.DefaultSchedule().ConfigApplyPriorityUpdateDelta(2)); err == nil {
		t.Error("expected error for set cover with ∆ > 1")
	}
	dg, err := graphit.RMAT(graphit.DefaultRMAT(6, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SetCover(dg, graphit.DefaultSchedule()); err == nil {
		t.Error("expected error for set cover on a directed graph")
	}
}
