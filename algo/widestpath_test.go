package algo

import (
	"testing"

	"graphit"
)

func TestWidestPathMatchesReference(t *testing.T) {
	for gname, g := range testGraphs(t) {
		src := graphit.VertexID(2)
		want, err := RefWidestPath(g, src)
		if err != nil {
			t.Fatal(err)
		}
		schedules := map[string]graphit.Schedule{
			"lazy_push": graphit.DefaultSchedule().ConfigApplyPriorityUpdate("lazy"),
			"lazy_pull": graphit.DefaultSchedule().ConfigApplyPriorityUpdate("lazy").ConfigApplyDirection("DensePull"),
			"lazy_win8": graphit.DefaultSchedule().ConfigApplyPriorityUpdate("lazy").ConfigNumBuckets(8),
		}
		for sname, sched := range schedules {
			got, err := WidestPath(g, src, sched)
			if err != nil {
				t.Fatalf("%s/%s: %v", gname, sname, err)
			}
			for v := range want {
				if got.Capacity[v] != want[v] {
					t.Fatalf("%s/%s: capacity[%d] = %d, want %d",
						gname, sname, v, got.Capacity[v], want[v])
				}
			}
			if got.Stats.Rounds == 0 {
				t.Errorf("%s/%s: no rounds", gname, sname)
			}
		}
	}
}

func TestWidestPathRejectsEagerSchedules(t *testing.T) {
	g := testGraphs(t)["rmat"]
	if _, err := WidestPath(g, 0, graphit.DefaultSchedule()); err == nil {
		t.Fatal("eager schedule must be rejected for higher_first queues")
	}
}

func TestWidestPathSourceCapacity(t *testing.T) {
	g := testGraphs(t)["road"]
	src := graphit.VertexID(5)
	res, err := WidestPath(g, src, graphit.DefaultSchedule().ConfigApplyPriorityUpdate("lazy"))
	if err != nil {
		t.Fatal(err)
	}
	// Every reachable capacity is bounded by the source's.
	for v, c := range res.Capacity {
		if c != graphit.NullMax && c > res.Capacity[src] {
			t.Fatalf("capacity[%d] = %d exceeds source %d", v, c, res.Capacity[src])
		}
	}
}
