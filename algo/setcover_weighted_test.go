package algo

import (
	"math/rand"
	"testing"

	"graphit"
)

func setCosts(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	costs := make([]int64, n)
	for i := range costs {
		costs[i] = int64(1 + rng.Intn(20))
	}
	return costs
}

func TestWeightedSetCoverCoversUniverse(t *testing.T) {
	for gname, g := range symGraphs(t) {
		n := g.NumVertices()
		costs := setCosts(n, 77)
		res, err := WeightedSetCover(g, costs, graphit.DefaultSchedule())
		if err != nil {
			t.Fatalf("%s: %v", gname, err)
		}
		for e := 0; e < n; e++ {
			s := res.CoveredBy[e]
			if s < 0 {
				t.Fatalf("%s: element %d uncovered", gname, e)
			}
			if !res.Chosen[s] || !setContains(g, uint32(s), uint32(e)) {
				t.Fatalf("%s: element %d covered invalidly by %d", gname, e, s)
			}
		}
	}
}

func TestWeightedSetCoverNearGreedyCost(t *testing.T) {
	g := symGraphs(t)["rmat"]
	costs := setCosts(g.NumVertices(), 13)
	res, err := WeightedSetCover(g, costs, graphit.DefaultSchedule())
	if err != nil {
		t.Fatal(err)
	}
	_, greedyCost, err := GreedyWeightedSetCover(g, costs)
	if err != nil {
		t.Fatal(err)
	}
	parCost := CoverCost(res, costs)
	if parCost > 4*greedyCost {
		t.Errorf("parallel cost %d vs greedy %d (> 4x)", parCost, greedyCost)
	}
	t.Logf("parallel cost %d, greedy cost %d, rounds %d", parCost, greedyCost, res.Stats.Rounds)
}

func TestWeightedSetCoverUnitCostsMatchUnweightedShape(t *testing.T) {
	g := symGraphs(t)["road"]
	n := g.NumVertices()
	unit := make([]int64, n)
	for i := range unit {
		unit[i] = 1
	}
	w, err := WeightedSetCover(g, unit, graphit.DefaultSchedule())
	if err != nil {
		t.Fatal(err)
	}
	u, err := SetCover(g, graphit.DefaultSchedule())
	if err != nil {
		t.Fatal(err)
	}
	// With unit costs the weighted variant degenerates to the unweighted
	// problem; cover sizes should be comparable (the fixed-point bucket
	// values differ by the precision constant, so not identical runs).
	lo, hi := u.NumChosen*3/4, u.NumChosen*4/3+1
	if w.NumChosen < lo || w.NumChosen > hi {
		t.Errorf("unit-cost weighted cover %d far from unweighted %d", w.NumChosen, u.NumChosen)
	}
}

func TestWeightedSetCoverPrefersCheapSets(t *testing.T) {
	// A star graph: hub 0 covers everything; leaves cover only themselves
	// and the hub. With a cheap hub, the cover should be just the hub; with
	// an exorbitant hub, the leaves win.
	var edges []graphit.Edge
	const n = 50
	for v := graphit.VertexID(1); v < n; v++ {
		edges = append(edges, graphit.Edge{Src: 0, Dst: v, W: 1})
	}
	g, err := graphit.BuildGraph(edges, graphit.BuildOptions{Symmetrize: true, Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	cheapHub := make([]int64, n)
	for i := range cheapHub {
		cheapHub[i] = 100
	}
	cheapHub[0] = 1
	res, err := WeightedSetCover(g, cheapHub, graphit.DefaultSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Chosen[0] {
		t.Error("cheap hub not chosen")
	}
	if CoverCost(res, cheapHub) > 101 {
		t.Errorf("cover cost %d; the cheap hub alone costs 1", CoverCost(res, cheapHub))
	}
}

func TestWeightedSetCoverRejectsBadInput(t *testing.T) {
	g := symGraphs(t)["rmat"]
	if _, err := WeightedSetCover(g, make([]int64, 3), graphit.DefaultSchedule()); err == nil {
		t.Error("wrong cost length accepted")
	}
	costs := setCosts(g.NumVertices(), 1)
	costs[5] = 0
	if _, err := WeightedSetCover(g, costs, graphit.DefaultSchedule()); err == nil {
		t.Error("zero cost accepted")
	}
}
