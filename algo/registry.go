package algo

import (
	"context"
	"fmt"
	"strings"

	"graphit"
)

// ResultKind tells a caller how to interpret a QueryResult — which fields
// are populated and what a summary should report.
type ResultKind int

const (
	// KindDist: Values is a distance vector (Unreached = unreachable).
	KindDist ResultKind = iota
	// KindPair: Values is a distance vector but only Values[dst] is the
	// answer (early-terminating point-to-point searches).
	KindPair
	// KindCoreness: Values is a coreness vector.
	KindCoreness
	// KindCover: NumChosen is the cover size; Values is nil.
	KindCover
)

// QueryResult is the kind-tagged union of the algorithm result types, the
// uniform shape the CLI and the graphd server consume.
type QueryResult struct {
	// Values is the per-vertex output vector (distances or coreness); nil
	// for KindCover.
	Values []int64
	// NumChosen is the set-cover size (KindCover only).
	NumChosen int
	// Stats are the engine's execution counters (partial after a contained
	// fault or cancellation).
	Stats graphit.Stats
}

// Spec describes one runnable algorithm: its input requirements, result
// shape, entry point, and sequential reference. The requirement flags let a
// dispatcher reject an unsatisfiable request before admitting it to the
// engine.
type Spec struct {
	Name string
	Kind ResultKind
	// NeedsDst / NeedsWeights / NeedsCoords / NeedsSymmetric gate the
	// request and graph shapes the algorithm accepts.
	NeedsDst       bool
	NeedsWeights   bool
	NeedsCoords    bool
	NeedsSymmetric bool
	// Exact reports that Run's output must equal Ref's for any valid
	// schedule with ∆=1 (approximation-free algorithms). SetCover and the
	// approx variants trade exactness for speed, so their Ref is a quality
	// baseline, not an equality oracle.
	Exact bool
	// Run executes the algorithm under ctx and sched. Like the underlying
	// wrappers, it returns a non-nil partial result together with the error
	// after a contained fault or cancellation.
	Run func(ctx context.Context, g *graphit.Graph, src, dst graphit.VertexID, sched graphit.Schedule) (*QueryResult, error)
	// RunMulti, when non-nil, executes k source lanes as one shared engine
	// run and returns one result per lane, each element-wise equal to the
	// corresponding single-source Run. Algorithms that ignore dst accept a
	// nil dsts slice; pair algorithms require len(dsts) == len(srcs). Only
	// lazy schedules are supported — dispatchers must gate on the schedule
	// before batching lanes together.
	RunMulti func(ctx context.Context, g *graphit.Graph, srcs, dsts []graphit.VertexID, sched graphit.Schedule) ([]*QueryResult, error)
	// Ref is the sequential reference implementation (nil Stats).
	Ref func(g *graphit.Graph, src, dst graphit.VertexID) (*QueryResult, error)
}

// specs is the registry, in the order the CLI documents.
var specs = []*Spec{
	{
		Name: "sssp", Kind: KindDist, NeedsWeights: true, Exact: true,
		Run: func(ctx context.Context, g *graphit.Graph, src, _ graphit.VertexID, sched graphit.Schedule) (*QueryResult, error) {
			return fromSSSP(SSSPContext(ctx, g, src, sched))
		},
		RunMulti: func(ctx context.Context, g *graphit.Graph, srcs, _ []graphit.VertexID, sched graphit.Schedule) ([]*QueryResult, error) {
			return fromSSSPMulti(SSSPMultiContext(ctx, g, srcs, sched))
		},
		Ref: refDijkstra,
	},
	{
		Name: "wbfs", Kind: KindDist, NeedsWeights: true, Exact: true,
		Run: func(ctx context.Context, g *graphit.Graph, src, _ graphit.VertexID, sched graphit.Schedule) (*QueryResult, error) {
			return fromSSSP(WBFSContext(ctx, g, src, sched))
		},
		RunMulti: func(ctx context.Context, g *graphit.Graph, srcs, _ []graphit.VertexID, sched graphit.Schedule) ([]*QueryResult, error) {
			return fromSSSPMulti(WBFSMultiContext(ctx, g, srcs, sched))
		},
		Ref: refDijkstra,
	},
	{
		Name: "ppsp", Kind: KindPair, NeedsWeights: true, NeedsDst: true, Exact: true,
		Run: func(ctx context.Context, g *graphit.Graph, src, dst graphit.VertexID, sched graphit.Schedule) (*QueryResult, error) {
			return fromSSSP(PPSPContext(ctx, g, src, dst, sched))
		},
		RunMulti: func(ctx context.Context, g *graphit.Graph, srcs, dsts []graphit.VertexID, sched graphit.Schedule) ([]*QueryResult, error) {
			return fromSSSPMulti(PPSPMultiContext(ctx, g, srcs, dsts, sched))
		},
		Ref: refDijkstra,
	},
	{
		Name: "astar", Kind: KindPair, NeedsWeights: true, NeedsCoords: true, NeedsDst: true, Exact: true,
		Run: func(ctx context.Context, g *graphit.Graph, src, dst graphit.VertexID, sched graphit.Schedule) (*QueryResult, error) {
			res, err := AStarContext(ctx, g, src, dst, sched)
			if res == nil {
				return nil, err
			}
			return &QueryResult{Values: res.Dist, Stats: res.Stats}, err
		},
		Ref: refDijkstra,
	},
	{
		Name: "kcore", Kind: KindCoreness, NeedsSymmetric: true, Exact: true,
		Run: func(ctx context.Context, g *graphit.Graph, _, _ graphit.VertexID, sched graphit.Schedule) (*QueryResult, error) {
			return fromKCore(KCoreContext(ctx, g, sched))
		},
		Ref: refKCore,
	},
	{
		Name: "setcover", Kind: KindCover, NeedsSymmetric: true,
		Run: func(ctx context.Context, g *graphit.Graph, _, _ graphit.VertexID, sched graphit.Schedule) (*QueryResult, error) {
			res, err := SetCoverContext(ctx, g, sched)
			if res == nil {
				return nil, err
			}
			return &QueryResult{NumChosen: res.NumChosen, Stats: res.Stats}, err
		},
		Ref: func(g *graphit.Graph, _, _ graphit.VertexID) (*QueryResult, error) {
			_, n, err := GreedySetCover(g)
			if err != nil {
				return nil, err
			}
			return &QueryResult{NumChosen: n}, nil
		},
	},
	{
		Name: "bellmanford", Kind: KindDist, NeedsWeights: true, Exact: true,
		Run: func(ctx context.Context, g *graphit.Graph, src, _ graphit.VertexID, sched graphit.Schedule) (*QueryResult, error) {
			return fromSSSP(BellmanFordContext(ctx, g, src))
		},
		Ref: refDijkstra,
	},
	{
		Name: "kcore-unordered", Kind: KindCoreness, NeedsSymmetric: true, Exact: true,
		Run: func(ctx context.Context, g *graphit.Graph, _, _ graphit.VertexID, _ graphit.Schedule) (*QueryResult, error) {
			return fromKCore(UnorderedKCoreContext(ctx, g))
		},
		Ref: refKCore,
	},
	{
		Name: "sssp-approx", Kind: KindDist, NeedsWeights: true,
		Run: func(ctx context.Context, g *graphit.Graph, src, _ graphit.VertexID, sched graphit.Schedule) (*QueryResult, error) {
			return fromSSSP(SSSPApproxContext(ctx, g, src, sched))
		},
		Ref: refDijkstra,
	},
}

func fromSSSP(res *SSSPResult, err error) (*QueryResult, error) {
	if res == nil {
		return nil, err
	}
	return &QueryResult{Values: res.Dist, Stats: res.Stats}, err
}

func fromSSSPMulti(res []*SSSPResult, err error) ([]*QueryResult, error) {
	if res == nil {
		return nil, err
	}
	out := make([]*QueryResult, len(res))
	for l, r := range res {
		out[l] = &QueryResult{Values: r.Dist, Stats: r.Stats}
	}
	return out, err
}

func fromKCore(res *KCoreResult, err error) (*QueryResult, error) {
	if res == nil {
		return nil, err
	}
	return &QueryResult{Values: res.Coreness, Stats: res.Stats}, err
}

func refDijkstra(g *graphit.Graph, src, _ graphit.VertexID) (*QueryResult, error) {
	dist, err := Dijkstra(g, src)
	if err != nil {
		return nil, err
	}
	return &QueryResult{Values: dist}, nil
}

func refKCore(g *graphit.Graph, _, _ graphit.VertexID) (*QueryResult, error) {
	core, err := RefKCore(g)
	if err != nil {
		return nil, err
	}
	return &QueryResult{Values: core}, nil
}

// Names returns every registered algorithm name, in registry order.
func Names() []string {
	names := make([]string, len(specs))
	for i, sp := range specs {
		names[i] = sp.Name
	}
	return names
}

// Lookup resolves an algorithm name; an unknown name yields an error
// listing the valid options (the one spelling of this error shared by every
// binary).
func Lookup(name string) (*Spec, error) {
	for _, sp := range specs {
		if sp.Name == name {
			return sp, nil
		}
	}
	return nil, fmt.Errorf("algo: unknown algorithm %q (valid: %s)", name, strings.Join(Names(), ", "))
}

// CheckGraph verifies that g satisfies the spec's graph requirements,
// returning a request-level (not engine-level) error when it does not.
func (sp *Spec) CheckGraph(g *graphit.Graph) error {
	if sp.NeedsWeights && !g.Weighted() {
		return fmt.Errorf("algo: %s requires a weighted graph", sp.Name)
	}
	if sp.NeedsCoords && !g.HasCoords() {
		return fmt.Errorf("algo: %s requires vertex coordinates", sp.Name)
	}
	if sp.NeedsSymmetric && !g.Symmetric() {
		return fmt.Errorf("algo: %s requires a symmetrized graph", sp.Name)
	}
	return nil
}
