package algo

import (
	"context"
	"fmt"
	"math"

	"graphit"
)

// The *_Approx variants run under approximate priority ordering — the
// execution model of Galois's ordered list, which the paper compares
// against in Table 4 and Figure 4. They share the UDFs of their strict
// counterparts but never synchronize globally per priority, trading
// work-efficiency for reduced synchronization (paper §7, "Approximate
// Priority Ordering").

// SSSPApprox is ∆-stepping SSSP under approximate ordering (Galois).
func SSSPApprox(g *graphit.Graph, src graphit.VertexID, sched graphit.Schedule) (*SSSPResult, error) {
	return SSSPApproxContext(context.Background(), g, src, sched)
}

// SSSPApproxContext is SSSPApprox under a context, returning the partial
// distance vector and ctx.Err() on cancellation.
func SSSPApproxContext(ctx context.Context, g *graphit.Graph, src graphit.VertexID, sched graphit.Schedule) (*SSSPResult, error) {
	if err := checkWeighted(g); err != nil {
		return nil, err
	}
	dist := initDist(g.NumVertices(), src)
	op := &graphit.Ordered{
		G:     g,
		Prio:  dist,
		Order: graphit.LowerFirst,
		Apply: func(s, d graphit.VertexID, w graphit.Weight, q *graphit.Queue) {
			q.UpdatePriorityMin(d, q.Priority(s)+int64(w))
		},
		Sources: []graphit.VertexID{src},
	}
	cfg, err := sched.Config()
	if err != nil {
		return nil, err
	}
	op.Cfg = cfg
	st, err := op.RunApproxContext(ctx)
	if err != nil {
		if halted(ctx, err) {
			return &SSSPResult{Dist: dist, Stats: st}, err
		}
		return nil, err
	}
	return &SSSPResult{Dist: dist, Stats: st}, nil
}

// PPSPApprox is point-to-point shortest path under approximate ordering.
func PPSPApprox(g *graphit.Graph, src, dst graphit.VertexID, sched graphit.Schedule) (*SSSPResult, error) {
	return PPSPApproxContext(context.Background(), g, src, dst, sched)
}

// PPSPApproxContext is PPSPApprox under a context, returning the partial
// distance vector and ctx.Err() on cancellation.
func PPSPApproxContext(ctx context.Context, g *graphit.Graph, src, dst graphit.VertexID, sched graphit.Schedule) (*SSSPResult, error) {
	if err := checkWeighted(g); err != nil {
		return nil, err
	}
	dist := initDist(g.NumVertices(), src)
	op := &graphit.Ordered{
		G:     g,
		Prio:  dist,
		Order: graphit.LowerFirst,
		Apply: func(s, d graphit.VertexID, w graphit.Weight, q *graphit.Queue) {
			q.UpdatePriorityMin(d, q.Priority(s)+int64(w))
		},
		Sources: []graphit.VertexID{src},
		Stop: func(cur int64) bool {
			best := graphit.AtomicLoad(&dist[dst])
			return best != graphit.Unreached && cur >= best
		},
	}
	cfg, err := sched.Config()
	if err != nil {
		return nil, err
	}
	op.Cfg = cfg
	st, err := op.RunApproxContext(ctx)
	if err != nil {
		if halted(ctx, err) {
			return &SSSPResult{Dist: dist, Stats: st}, err
		}
		return nil, err
	}
	return &SSSPResult{Dist: dist, Stats: st}, nil
}

// AStarApprox is A* search under approximate ordering.
func AStarApprox(g *graphit.Graph, src, dst graphit.VertexID, sched graphit.Schedule) (*AStarResult, error) {
	return AStarApproxContext(context.Background(), g, src, dst, sched)
}

// AStarApproxContext is AStarApprox under a context, returning the partial
// result and ctx.Err() on cancellation.
func AStarApproxContext(ctx context.Context, g *graphit.Graph, src, dst graphit.VertexID, sched graphit.Schedule) (*AStarResult, error) {
	if err := checkWeighted(g); err != nil {
		return nil, err
	}
	if !g.HasCoords() {
		return nil, fmt.Errorf("algo: A* requires vertex coordinates")
	}
	n := g.NumVertices()
	target := g.Coord[dst]
	h := func(v graphit.VertexID) int64 {
		dx := float64(g.Coord[v].X - target.X)
		dy := float64(g.Coord[v].Y - target.Y)
		return int64(math.Sqrt(dx*dx + dy*dy))
	}
	dist := initDist(n, src)
	est := make([]int64, n)
	for i := range est {
		est[i] = graphit.Unreached
	}
	est[src] = h(src)
	op := &graphit.Ordered{
		G:     g,
		Prio:  est,
		Order: graphit.LowerFirst,
		Apply: func(s, d graphit.VertexID, w graphit.Weight, q *graphit.Queue) {
			nd := graphit.AtomicLoad(&dist[s]) + int64(w)
			if graphit.WriteMin(&dist[d], nd) {
				q.UpdatePriorityMin(d, nd+h(d))
			}
		},
		Sources: []graphit.VertexID{src},
		Stop: func(cur int64) bool {
			best := graphit.AtomicLoad(&dist[dst])
			return best != graphit.Unreached && cur >= best
		},
	}
	cfg, err := sched.Config()
	if err != nil {
		return nil, err
	}
	op.Cfg = cfg
	st, err := op.RunApproxContext(ctx)
	if err != nil {
		if halted(ctx, err) {
			return &AStarResult{Dist: dist, Estimate: est, Stats: st}, err
		}
		return nil, err
	}
	return &AStarResult{Dist: dist, Estimate: est, Stats: st}, nil
}
