package algo

import (
	"context"
	"fmt"
	"math"

	"graphit"
	"graphit/internal/atomicutil"
	"graphit/internal/bucket"
	"graphit/internal/parallel"
)

// ratioPrec is the fixed-point precision of cost-per-element priorities in
// WeightedSetCover: priority = uncovered × ratioPrec / cost.
const ratioPrec = 64

// WeightedSetCover generalizes SetCover to per-set costs, the extension the
// paper notes the algorithm supports (§6.1: "the algorithm used easily
// generalizes to the weighted case"). Sets are bucketed by their
// *cost-effectiveness* — the number of still-uncovered elements they cover
// per unit cost, in fixed-point — and processed from the most effective
// bucket, with the same reservation/commit rounds as the unweighted
// version.
//
// costs[v] is the cost of set v and must be positive. The schedule's ∆
// must be 1 (no coarsening), as for SetCover.
func WeightedSetCover(g *graphit.Graph, costs []int64, sched graphit.Schedule) (*SetCoverResult, error) {
	return WeightedSetCoverContext(context.Background(), g, costs, sched)
}

// WeightedSetCoverContext is WeightedSetCover under a context: cancellation
// is checked at every round barrier and returns the partial cover together
// with ctx.Err().
func WeightedSetCoverContext(ctx context.Context, g *graphit.Graph, costs []int64, sched graphit.Schedule) (*SetCoverResult, error) {
	if !g.Symmetric() {
		return nil, fmt.Errorf("algo: set cover requires a symmetrized graph")
	}
	cfg, err := sched.Config()
	if err != nil {
		return nil, err
	}
	if cfg.Delta > 1 {
		return nil, fmt.Errorf("algo: set cover does not allow priority coarsening (∆=%d)", cfg.Delta)
	}
	n := g.NumVertices()
	if len(costs) != n {
		return nil, fmt.Errorf("algo: %d costs for %d sets", len(costs), n)
	}
	for v, c := range costs {
		if c <= 0 {
			return nil, fmt.Errorf("algo: set %d has non-positive cost %d", v, c)
		}
	}

	const unreserved = int64(math.MaxInt64)
	const uncoveredMark = int64(-1)
	coveredBy := make([]int64, n)
	reserve := make([]int64, n)
	uncov := make([]int64, n) // # uncovered elements each set covers
	prio := make([]int64, n)  // fixed-point cost-effectiveness
	chosen := make([]bool, n)
	for v := 0; v < n; v++ {
		coveredBy[v] = uncoveredMark
		reserve[v] = unreserved
		uncov[v] = int64(g.OutDegree(graphit.VertexID(v))) + 1
		prio[v] = uncov[v] * ratioPrec / costs[v]
	}

	bktOf := func(v uint32) int64 {
		if p := prio[v]; p > 0 {
			return p
		}
		return bucket.NullBkt
	}
	lz := bucket.NewLazy(n, bucket.Decreasing, cfg.NumBuckets, bktOf)

	elementsOf := func(v uint32, f func(e uint32)) {
		f(v)
		for _, e := range g.OutNeigh(v) {
			f(e)
		}
	}
	recount := func(s uint32) int64 {
		var c int64
		elementsOf(s, func(e uint32) {
			if atomicutil.Load(&coveredBy[e]) == uncoveredMark {
				c++
			}
		})
		return c
	}

	var st graphit.Stats
	var runErr error
	for {
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		bid, sets := lz.Next()
		if bid == bucket.NullBkt {
			break
		}
		st.Rounds++
		// Phase 1: reservation (identical to the unweighted version).
		parallel.ForChunks(len(sets), cfg.Grain, func(lo, hi, _ int) {
			for _, s := range sets[lo:hi] {
				elementsOf(s, func(e uint32) {
					if atomicutil.Load(&coveredBy[e]) == uncoveredMark {
						atomicutil.WriteMin(&reserve[e], int64(s))
					}
				})
			}
		})
		// Phase 2: a set commits if the elements it *won* still give at
		// least half the bucket's cost-effectiveness.
		updated := make([][]uint32, parallel.Workers())
		parallel.ForChunks(len(sets), cfg.Grain, func(lo, hi, worker int) {
			for _, s := range sets[lo:hi] {
				var won int64
				elementsOf(s, func(e uint32) {
					if atomicutil.Load(&coveredBy[e]) == uncoveredMark &&
						atomicutil.Load(&reserve[e]) == int64(s) {
						won++
					}
				})
				wonRatio := won * ratioPrec / costs[s]
				out := &updated[worker]
				if wonRatio >= (bid+1)/2 && won > 0 {
					chosen[s] = true
					elementsOf(s, func(e uint32) {
						if atomicutil.Load(&reserve[e]) == int64(s) {
							atomicutil.Store(&coveredBy[e], int64(s))
						}
					})
					prio[s] = 0
				} else {
					c := recount(s)
					uncov[s] = c
					prio[s] = c * ratioPrec / costs[s]
					if c > 0 && prio[s] == 0 {
						// Cost so high the ratio truncates to zero: such a
						// set only matters for elements nothing else
						// covers; keep it live in the lowest bucket.
						prio[s] = 1
					}
					if prio[s] > 0 {
						*out = append(*out, s)
					}
				}
			}
		})
		// Phase 3: release reservations.
		parallel.ForChunks(len(sets), cfg.Grain, func(lo, hi, _ int) {
			for _, s := range sets[lo:hi] {
				elementsOf(s, func(e uint32) {
					atomicutil.Store(&reserve[e], unreserved)
				})
			}
		})
		st.GlobalSyncs += 3
		var upd []uint32
		for _, u := range updated {
			upd = append(upd, u...)
		}
		lz.UpdateBuckets(upd)
	}

	num := 0
	for _, c := range chosen {
		if c {
			num++
		}
	}
	st.BucketInserts = lz.Inserts
	st.WindowAdvances = lz.Rebuckets
	return &SetCoverResult{
		Chosen:    chosen,
		CoveredBy: coveredBy,
		NumChosen: num,
		Stats:     st,
	}, runErr
}

// CoverCost sums the costs of the chosen sets.
func CoverCost(res *SetCoverResult, costs []int64) int64 {
	var total int64
	for v, c := range res.Chosen {
		if c {
			total += costs[v]
		}
	}
	return total
}

// GreedyWeightedSetCover is the sequential cost-effectiveness greedy used
// as the quality yardstick for WeightedSetCover.
func GreedyWeightedSetCover(g *graphit.Graph, costs []int64) ([]bool, int64, error) {
	if !g.Symmetric() {
		return nil, 0, fmt.Errorf("algo: set cover requires a symmetrized graph")
	}
	n := g.NumVertices()
	covered := make([]bool, n)
	chosen := make([]bool, n)
	numCovered := 0
	var totalCost int64
	recount := func(s uint32) int64 {
		var c int64
		if !covered[s] {
			c++
		}
		for _, e := range g.OutNeigh(s) {
			if !covered[e] {
				c++
			}
		}
		return c
	}
	for numCovered < n {
		best, bestRatio := -1, float64(-1)
		for s := 0; s < n; s++ {
			if chosen[s] {
				continue
			}
			c := recount(uint32(s))
			if c == 0 {
				continue
			}
			r := float64(c) / float64(costs[s])
			if r > bestRatio {
				best, bestRatio = s, r
			}
		}
		if best < 0 {
			return nil, 0, fmt.Errorf("algo: greedy stuck with %d uncovered", n-numCovered)
		}
		chosen[best] = true
		totalCost += costs[best]
		mark := func(e uint32) {
			if !covered[e] {
				covered[e] = true
				numCovered++
			}
		}
		mark(uint32(best))
		for _, e := range g.OutNeigh(uint32(best)) {
			mark(e)
		}
	}
	return chosen, totalCost, nil
}
