package algo_test

import (
	"context"
	"errors"
	"fmt"

	"graphit"
	"graphit/algo"
	"graphit/internal/core"
	"graphit/internal/faults"
)

// Example_containedFault shows the containment contract a caller can rely
// on: a panic inside an engine phase does not crash the process — the run
// returns a typed *graphit.PanicError (matchable with errors.As) alongside
// the partial result computed before the fault.
func Example_containedFault() {
	g, err := graphit.RoadGrid(graphit.RoadOptions{Rows: 10, Cols: 10, Seed: 5})
	if err != nil {
		panic(err)
	}

	// Simulate a hostile user-defined edge function: panic in round 2's
	// relax phase.
	in := faults.New(faults.PanicAt(core.PhaseRelax, 2, "bad edge function"))
	ctx := in.Context(context.Background())

	res, err := algo.SSSPContext(ctx, g, 0, graphit.DefaultSchedule())

	var pe *graphit.PanicError
	fmt.Println("contained:", errors.As(err, &pe))
	fmt.Printf("phase %q, round %d\n", pe.Phase, pe.Round)
	fmt.Println("partial result:", res != nil && res.Stats.Rounds > 0)
	// Output:
	// contained: true
	// phase "relax", round 2
	// partial result: true
}
