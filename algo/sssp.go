package algo

import (
	"context"

	"graphit"
)

// SSSPResult carries the output of a shortest-path style run.
type SSSPResult struct {
	// Dist[v] is the shortest distance from the source to v, or
	// graphit.Unreached if v is unreachable.
	Dist []int64
	// Stats are the engine's execution counters.
	Stats graphit.Stats
}

// SSSP computes single-source shortest paths with ∆-stepping (paper Figures
// 3 and 5–7): vertices are bucketed by floor(dist/∆) and processed in
// bucket order; the schedule selects eager/lazy bucketing, bucket fusion,
// ∆, and traversal direction. It is the library form of the DSL program in
// paper Figure 3.
func SSSP(g *graphit.Graph, src graphit.VertexID, sched graphit.Schedule) (*SSSPResult, error) {
	return SSSPContext(context.Background(), g, src, sched)
}

// SSSPContext is SSSP under a context. On cancellation it returns the
// partial result computed so far (distances settled up to the cancelled
// round) together with ctx.Err().
func SSSPContext(ctx context.Context, g *graphit.Graph, src graphit.VertexID, sched graphit.Schedule) (*SSSPResult, error) {
	if err := checkWeighted(g); err != nil {
		return nil, err
	}
	dist := initDist(g.NumVertices(), src)
	op := &graphit.Ordered{
		G:     g,
		Prio:  dist,
		Order: graphit.LowerFirst,
		// The UDF from paper Figure 3, lines 7–10: compute the relaxed
		// distance and lower dst's priority to it.
		Apply: func(s, d graphit.VertexID, w graphit.Weight, q *graphit.Queue) {
			q.UpdatePriorityMin(d, q.Priority(s)+int64(w))
		},
		Sources: []graphit.VertexID{src},
	}
	st, err := graphit.RunOrderedContext(ctx, op, sched)
	if err != nil {
		if halted(ctx, err) {
			return &SSSPResult{Dist: dist, Stats: st}, err
		}
		return nil, err
	}
	return &SSSPResult{Dist: dist, Stats: st}, nil
}

// WBFS computes weighted breadth-first search: ∆-stepping specialized to
// ∆=1 for graphs with small positive integer weights (paper §6.1). Any ∆
// in the schedule is overridden.
func WBFS(g *graphit.Graph, src graphit.VertexID, sched graphit.Schedule) (*SSSPResult, error) {
	return WBFSContext(context.Background(), g, src, sched)
}

// WBFSContext is WBFS under a context.
func WBFSContext(ctx context.Context, g *graphit.Graph, src graphit.VertexID, sched graphit.Schedule) (*SSSPResult, error) {
	return SSSPContext(ctx, g, src, sched.ConfigApplyPriorityUpdateDelta(1))
}

// PPSP computes a point-to-point shortest path with ∆-stepping plus early
// termination: the run halts on entering a bucket whose priority is at
// least the best distance already found for dst (paper §6.1).
func PPSP(g *graphit.Graph, src, dst graphit.VertexID, sched graphit.Schedule) (*SSSPResult, error) {
	return PPSPContext(context.Background(), g, src, dst, sched)
}

// PPSPContext is PPSP under a context, returning the partial result and
// ctx.Err() on cancellation.
func PPSPContext(ctx context.Context, g *graphit.Graph, src, dst graphit.VertexID, sched graphit.Schedule) (*SSSPResult, error) {
	if err := checkWeighted(g); err != nil {
		return nil, err
	}
	dist := initDist(g.NumVertices(), src)
	op := &graphit.Ordered{
		G:     g,
		Prio:  dist,
		Order: graphit.LowerFirst,
		Apply: func(s, d graphit.VertexID, w graphit.Weight, q *graphit.Queue) {
			q.UpdatePriorityMin(d, q.Priority(s)+int64(w))
		},
		Sources: []graphit.VertexID{src},
		Stop: func(cur int64) bool {
			best := graphit.AtomicLoad(&dist[dst])
			return best != graphit.Unreached && cur >= best
		},
	}
	st, err := graphit.RunOrderedContext(ctx, op, sched)
	if err != nil {
		if halted(ctx, err) {
			return &SSSPResult{Dist: dist, Stats: st}, err
		}
		return nil, err
	}
	return &SSSPResult{Dist: dist, Stats: st}, nil
}
