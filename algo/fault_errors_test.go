package algo_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"graphit"
	"graphit/algo"
	"graphit/internal/core"
	"graphit/internal/faults"
)

// These tests pin the public fault-type contract the serving layer depends
// on: a contained fault produced deep in the engine must round-trip through
// every algo wrapper's partial-result path and still match errors.As against
// the public graphit.PanicError / graphit.StuckError aliases — and the
// partial result must actually be there.

func faultGraph(t *testing.T) *graphit.Graph {
	t.Helper()
	g, err := graphit.RoadGrid(graphit.RoadOptions{Rows: 10, Cols: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPanicErrorRoundTripsThroughWrappers(t *testing.T) {
	g := faultGraph(t)
	in := faults.New(faults.PanicAt(core.PhaseRelax, 2, "bad edge function"))
	ctx := in.Context(context.Background())

	res, err := algo.SSSPContext(ctx, g, 0, graphit.DefaultSchedule())
	if err == nil {
		t.Fatal("injected panic did not surface")
	}
	var pe *graphit.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("errors.As(*graphit.PanicError) failed on %T: %v", err, err)
	}
	if pe.Phase != "relax" || pe.Round != 2 || pe.Value != "bad edge function" {
		t.Fatalf("PanicError = %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError lost its stack")
	}
	if res == nil || res.Stats.Rounds == 0 {
		t.Fatalf("wrapper dropped the partial result: %+v", res)
	}
	// The public classification helpers agree.
	if !graphit.IsEngineFault(err) || graphit.ClassifyFault(err) != graphit.FaultKindPanic {
		t.Fatalf("classification: IsEngineFault=%v ClassifyFault=%q", graphit.IsEngineFault(err), graphit.ClassifyFault(err))
	}

	// The same fault through the registry dispatch path (what graphd runs).
	sp, lerr := algo.Lookup("sssp")
	if lerr != nil {
		t.Fatal(lerr)
	}
	in2 := faults.New(faults.PanicAt(core.PhaseRelax, 2, "bad edge function"))
	qres, err := sp.Run(in2.Context(context.Background()), g, 0, 0, graphit.DefaultSchedule())
	if !errors.As(err, &pe) {
		t.Fatalf("registry path lost the PanicError: %v", err)
	}
	if qres == nil || qres.Stats.Rounds == 0 {
		t.Fatalf("registry path dropped the partial result: %+v", qres)
	}
}

func TestStuckErrorRoundTripsThroughWrappers(t *testing.T) {
	g := faultGraph(t)
	// Stall round 2 past a 50ms watchdog: the engine aborts the round and
	// reports a StuckError carrying its recent round trace.
	in := faults.New(faults.DelayAt(core.PhaseRelax, 2, 400*time.Millisecond))
	ctx := in.Context(context.Background())
	sched := graphit.DefaultSchedule().ConfigRoundTimeout(50 * time.Millisecond)

	res, err := algo.SSSPContext(ctx, g, 0, sched)
	if err == nil {
		t.Fatal("watchdog did not fire")
	}
	var se *graphit.StuckError
	if !errors.As(err, &se) {
		t.Fatalf("errors.As(*graphit.StuckError) failed on %T: %v", err, err)
	}
	if res == nil {
		t.Fatal("wrapper dropped the partial result")
	}
	if graphit.ClassifyFault(err) != graphit.FaultKindStuck || !graphit.IsEngineFault(err) {
		t.Fatalf("classification: %q", graphit.ClassifyFault(err))
	}

	// Registry dispatch path, k-core flavor (different wrapper, same chain).
	sp, lerr := algo.Lookup("kcore")
	if lerr != nil {
		t.Fatal(lerr)
	}
	in2 := faults.New(faults.DelayAt(core.PhaseRelax, 1, 400*time.Millisecond))
	qres, err := sp.Run(in2.Context(context.Background()), g, 0, 0,
		graphit.DefaultSchedule().ConfigRoundTimeout(50*time.Millisecond))
	if !errors.As(err, &se) {
		t.Fatalf("registry path lost the StuckError: %v", err)
	}
	if qres == nil {
		t.Fatal("registry path dropped the partial result")
	}
}

func TestCancellationIsNotAnEngineFault(t *testing.T) {
	g := faultGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	in := faults.New(faults.CancelAt(core.PhaseRelax, 2, cancel))
	_, err := algo.SSSPContext(in.Context(ctx), g, 0, graphit.DefaultSchedule())
	if err == nil {
		t.Fatal("cancellation did not surface")
	}
	if graphit.IsEngineFault(err) {
		t.Fatalf("cancellation classified as an engine fault: %v", err)
	}
	if graphit.ClassifyFault(err) != graphit.FaultKindCanceled {
		t.Fatalf("ClassifyFault = %q, want %q", graphit.ClassifyFault(err), graphit.FaultKindCanceled)
	}
}
