// Package algo provides the six ordered graph algorithms the paper
// evaluates (Section 6.1) — ∆-stepping SSSP, weighted BFS, point-to-point
// shortest paths, A* search, k-core decomposition, and approximate set
// cover — implemented against the graphit public API, plus the unordered
// baselines (Bellman-Ford, unordered k-core) used for Figure 1 and the
// sequential reference implementations used to verify results.
//
// Every ordered algorithm takes a graphit.Schedule, so the full scheduling
// space of the paper (eager with/without bucket fusion, lazy, lazy with
// constant-sum reduction, ∆ coarsening, push/pull) applies to each.
package algo

import (
	"fmt"

	"graphit"
)

// checkWeighted returns an error if g lacks weights.
func checkWeighted(g *graphit.Graph) error {
	if !g.Weighted() {
		return fmt.Errorf("algo: graph is unweighted; load or generate it with weights")
	}
	return nil
}

// initDist allocates a distance/priority vector with every vertex
// unreached except src, which gets 0.
func initDist(n int, src graphit.VertexID) []int64 {
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = graphit.Unreached
	}
	dist[src] = 0
	return dist
}
