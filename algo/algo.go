// Package algo provides the six ordered graph algorithms the paper
// evaluates (Section 6.1) — ∆-stepping SSSP, weighted BFS, point-to-point
// shortest paths, A* search, k-core decomposition, and approximate set
// cover — implemented against the graphit public API, plus the unordered
// baselines (Bellman-Ford, unordered k-core) used for Figure 1 and the
// sequential reference implementations used to verify results.
//
// Every ordered algorithm takes a graphit.Schedule, so the full scheduling
// space of the paper (eager with/without bucket fusion, lazy, lazy with
// constant-sum reduction, ∆ coarsening, push/pull) applies to each.
package algo

import (
	"context"
	"errors"
	"fmt"

	"graphit"
)

// halted reports whether err left a meaningful partial result behind:
// cancellation or deadline expiry, a contained engine panic, or a watchdog
// abort. The wrappers return the partial vector together with err in these
// cases, so callers can summarize what was computed before the halt.
func halted(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return true
	}
	var pe *graphit.PanicError
	var se *graphit.StuckError
	return errors.As(err, &pe) || errors.As(err, &se)
}

// checkWeighted returns an error if g lacks weights.
func checkWeighted(g *graphit.Graph) error {
	if !g.Weighted() {
		return fmt.Errorf("algo: graph is unweighted; load or generate it with weights")
	}
	return nil
}

// initDist allocates a distance/priority vector with every vertex
// unreached except src, which gets 0.
func initDist(n int, src graphit.VertexID) []int64 {
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = graphit.Unreached
	}
	dist[src] = 0
	return dist
}
