package algo

import (
	"context"
	"fmt"
	"math"

	"graphit"
	"graphit/internal/atomicutil"
	"graphit/internal/bucket"
	"graphit/internal/parallel"
)

// SetCoverResult carries the output of approximate set cover.
type SetCoverResult struct {
	// Chosen[v] reports whether set v is in the cover.
	Chosen []bool
	// CoveredBy[e] is the set that covers element e.
	CoveredBy []int64
	// NumChosen is the cover's cost (unit costs, paper §6.1).
	NumChosen int
	Stats     graphit.Stats
}

// SetCover computes an approximate minimum set cover on a symmetric graph,
// in the vertex-domination form the paper's frameworks evaluate: every
// vertex is both an element and a set that covers itself and its neighbors.
//
// The algorithm is the bucketed, nearly-independent greedy of Blelloch et
// al. as implemented in Julienne (paper §6.1): sets are bucketed by their
// number of uncovered elements and processed from the highest bucket
// (higher_first order). Each round, the ready sets race to reserve their
// uncovered elements with an atomic write-min of their id; a set that
// reserves at least half of the current bucket's value commits (joins the
// cover), while the rest release their reservations and are re-bucketed by
// their recomputed coverage — the lazy bucket update approach, since each
// set moves buckets at most once per round.
//
// Like k-core, set cover tolerates no priority coarsening; the schedule's
// ∆ must be 1. The schedule's NumBuckets and Grain options apply.
func SetCover(g *graphit.Graph, sched graphit.Schedule) (*SetCoverResult, error) {
	return SetCoverContext(context.Background(), g, sched)
}

// SetCoverContext is SetCover under a context: cancellation is checked at
// every round barrier and returns the partial (possibly incomplete) cover
// together with ctx.Err().
func SetCoverContext(ctx context.Context, g *graphit.Graph, sched graphit.Schedule) (*SetCoverResult, error) {
	if !g.Symmetric() {
		return nil, fmt.Errorf("algo: set cover requires a symmetrized graph")
	}
	cfg, err := sched.Config()
	if err != nil {
		return nil, err
	}
	if cfg.Delta > 1 {
		return nil, fmt.Errorf("algo: set cover does not allow priority coarsening (∆=%d)", cfg.Delta)
	}
	n := g.NumVertices()

	const unreserved = int64(math.MaxInt64)
	const uncoveredMark = int64(-1)
	coveredBy := make([]int64, n) // element -> committed set
	reserve := make([]int64, n)   // element -> reserving set this round
	prio := make([]int64, n)      // set -> # uncovered elements it covers
	chosen := make([]bool, n)
	for v := 0; v < n; v++ {
		coveredBy[v] = uncoveredMark
		reserve[v] = unreserved
		prio[v] = int64(g.OutDegree(graphit.VertexID(v))) + 1 // neighbors + self
	}

	bktOf := func(v uint32) int64 {
		if p := prio[v]; p > 0 {
			return p
		}
		return bucket.NullBkt
	}
	lz := bucket.NewLazy(n, bucket.Decreasing, cfg.NumBuckets, bktOf)

	var st graphit.Stats
	elementsOf := func(v uint32, f func(e uint32)) {
		f(v)
		for _, e := range g.OutNeigh(v) {
			f(e)
		}
	}

	var runErr error
	for {
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		bid, sets := lz.Next()
		if bid == bucket.NullBkt {
			break
		}
		st.Rounds++
		// Phase 1: reservation. Every ready set write-mins its id onto its
		// uncovered elements; the smallest set id wins each element.
		parallel.ForChunks(len(sets), cfg.Grain, func(lo, hi, _ int) {
			for _, s := range sets[lo:hi] {
				elementsOf(s, func(e uint32) {
					if atomicutil.Load(&coveredBy[e]) == uncoveredMark {
						atomicutil.WriteMin(&reserve[e], int64(s))
					}
				})
			}
		})
		// Phase 2: commit or release. A set that reserved at least half of
		// the bucket's value keeps its elements; others are re-bucketed by
		// their true remaining coverage.
		threshold := (bid + 1) / 2
		updated := make([][]uint32, parallel.Workers())
		parallel.ForChunks(len(sets), cfg.Grain, func(lo, hi, worker int) {
			for _, s := range sets[lo:hi] {
				var won int64
				elementsOf(s, func(e uint32) {
					if atomicutil.Load(&coveredBy[e]) == uncoveredMark &&
						atomicutil.Load(&reserve[e]) == int64(s) {
						won++
					}
				})
				out := &updated[worker]
				if won >= threshold {
					chosen[s] = true
					elementsOf(s, func(e uint32) {
						if atomicutil.Load(&reserve[e]) == int64(s) {
							atomicutil.Store(&coveredBy[e], int64(s))
						}
					})
					prio[s] = 0 // done; never re-bucketed
				} else {
					// Recompute true uncovered coverage; note elements
					// committed this round by other sets read as covered.
					var c int64
					elementsOf(s, func(e uint32) {
						if atomicutil.Load(&coveredBy[e]) == uncoveredMark {
							c++
						}
					})
					prio[s] = c
					if c > 0 {
						*out = append(*out, s)
					}
				}
			}
		})
		// Phase 3: release all reservations made this round.
		parallel.ForChunks(len(sets), cfg.Grain, func(lo, hi, _ int) {
			for _, s := range sets[lo:hi] {
				elementsOf(s, func(e uint32) {
					atomicutil.Store(&reserve[e], unreserved)
				})
			}
		})
		st.GlobalSyncs += 3
		var upd []uint32
		for _, u := range updated {
			upd = append(upd, u...)
		}
		lz.UpdateBuckets(upd)
	}

	num := 0
	for _, c := range chosen {
		if c {
			num++
		}
	}
	st.BucketInserts = lz.Inserts
	st.WindowAdvances = lz.Rebuckets
	return &SetCoverResult{
		Chosen:    chosen,
		CoveredBy: coveredBy,
		NumChosen: num,
		Stats:     st,
	}, runErr
}
