package algo_test

import (
	"context"
	"strings"
	"testing"

	"graphit"
	"graphit/algo"
)

func registryGraph(t *testing.T) *graphit.Graph {
	t.Helper()
	g, err := graphit.RoadGrid(graphit.RoadOptions{Rows: 12, Cols: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLookupKnownAndUnknown(t *testing.T) {
	for _, name := range algo.Names() {
		sp, err := algo.Lookup(name)
		if err != nil || sp.Name != name {
			t.Fatalf("Lookup(%q) = %v, %v", name, sp, err)
		}
		if sp.Run == nil || sp.Ref == nil {
			t.Fatalf("%s: registry entry missing Run or Ref", name)
		}
	}
	_, err := algo.Lookup("pagerank")
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	for _, frag := range append([]string{`unknown algorithm "pagerank"`, "valid:"}, algo.Names()...) {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error %q missing %q", err, frag)
		}
	}
}

// TestRegistryRunMatchesRef runs every exact algorithm through its registry
// entry point and compares against its own sequential reference — the same
// dispatch path the CLI and graphd use.
func TestRegistryRunMatchesRef(t *testing.T) {
	g := registryGraph(t)
	src, dst := graphit.VertexID(0), graphit.VertexID(g.NumVertices()-1)
	for _, name := range algo.Names() {
		sp, err := algo.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if !sp.Exact {
			continue
		}
		t.Run(name, func(t *testing.T) {
			sched := graphit.DefaultSchedule()
			if sp.Kind == algo.KindDist || sp.Kind == algo.KindPair {
				// Coarsening is valid for the path algorithms; k-core
				// requires exact priorities (∆=1).
				sched = sched.ConfigApplyPriorityUpdateDelta(32)
			}
			res, err := sp.Run(context.Background(), g, src, dst, sched)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			ref, err := sp.Ref(g, src, dst)
			if err != nil {
				t.Fatalf("Ref: %v", err)
			}
			switch sp.Kind {
			case algo.KindPair:
				if res.Values[dst] != ref.Values[dst] {
					t.Fatalf("dist(dst) = %d, want %d", res.Values[dst], ref.Values[dst])
				}
			default:
				for i := range ref.Values {
					if res.Values[i] != ref.Values[i] {
						t.Fatalf("vertex %d: got %d, want %d", i, res.Values[i], ref.Values[i])
					}
				}
			}
			if res.Stats.Rounds == 0 && name != "kcore-unordered" && name != "bellmanford" {
				t.Fatalf("%s: no engine rounds recorded", name)
			}
		})
	}
}

func TestCheckGraphGatesRequirements(t *testing.T) {
	road := registryGraph(t)
	rmat, err := graphit.RMAT(graphit.DefaultRMAT(6, 4, 1)) // asymmetric, no coords
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		algo string
		g    *graphit.Graph
		frag string // "" = must pass
	}{
		{"sssp", road, ""},
		{"astar", road, ""},
		{"kcore", road, ""},
		{"kcore", rmat, "symmetrized"},
		{"setcover", rmat, "symmetrized"},
		{"astar", rmat, "coordinates"},
	}
	for _, tc := range cases {
		sp, err := algo.Lookup(tc.algo)
		if err != nil {
			t.Fatal(err)
		}
		err = sp.CheckGraph(tc.g)
		if tc.frag == "" {
			if err != nil {
				t.Fatalf("%s on valid graph: %v", tc.algo, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Fatalf("%s: err %v, want %q", tc.algo, err, tc.frag)
		}
	}
}
