package algo

import (
	"container/heap"
	"fmt"

	"graphit"
)

// Sequential reference implementations used to verify every parallel
// schedule's output (DESIGN.md §7). They favor obvious correctness over
// speed.

// distHeap is a binary heap of (vertex, dist) pairs for Dijkstra.
type distHeap struct {
	v []uint32
	d []int64
}

func (h *distHeap) Len() int           { return len(h.v) }
func (h *distHeap) Less(i, j int) bool { return h.d[i] < h.d[j] }
func (h *distHeap) Swap(i, j int) {
	h.v[i], h.v[j] = h.v[j], h.v[i]
	h.d[i], h.d[j] = h.d[j], h.d[i]
}
func (h *distHeap) Push(x any) {
	p := x.([2]int64)
	h.v = append(h.v, uint32(p[0]))
	h.d = append(h.d, p[1])
}
func (h *distHeap) Pop() any {
	n := len(h.v) - 1
	p := [2]int64{int64(h.v[n]), h.d[n]}
	h.v, h.d = h.v[:n], h.d[:n]
	return p
}

// Dijkstra computes exact single-source shortest paths sequentially.
func Dijkstra(g *graphit.Graph, src graphit.VertexID) ([]int64, error) {
	if err := checkWeighted(g); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	dist := initDist(n, src)
	h := &distHeap{}
	heap.Push(h, [2]int64{int64(src), 0})
	for h.Len() > 0 {
		p := heap.Pop(h).([2]int64)
		v, d := uint32(p[0]), p[1]
		if d > dist[v] {
			continue // stale heap entry
		}
		wts := g.OutWts(v)
		for i, u := range g.OutNeigh(v) {
			nd := d + int64(wts[i])
			if nd < dist[u] {
				dist[u] = nd
				heap.Push(h, [2]int64{int64(u), nd})
			}
		}
	}
	return dist, nil
}

// RefKCore computes exact coreness with sequential bucket-queue peeling.
func RefKCore(g *graphit.Graph) ([]int64, error) {
	if !g.Symmetric() {
		return nil, fmt.Errorf("algo: k-core requires a symmetrized graph")
	}
	n := g.NumVertices()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graphit.VertexID(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket-sort vertices by degree (Matula-Beck smallest-last order).
	buckets := make([][]uint32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], uint32(v))
	}
	core := make([]int64, n)
	removed := make([]bool, n)
	cur := make([]int, n)
	copy(cur, deg)
	for k := 0; k <= maxDeg; k++ {
		for i := 0; i < len(buckets[k]); i++ { // bucket grows during loop
			v := buckets[k][i]
			if removed[v] || cur[v] != k {
				continue // stale entry
			}
			removed[v] = true
			core[v] = int64(k)
			for _, u := range g.OutNeigh(v) {
				if !removed[u] && cur[u] > k {
					cur[u]--
					b := cur[u]
					if b < k {
						b = k
					}
					buckets[b] = append(buckets[b], u)
				}
			}
		}
	}
	return core, nil
}

// GreedySetCover computes the classic sequential greedy cover (repeatedly
// pick the set covering the most uncovered elements) in the same
// vertex-domination formulation as SetCover. Its cost is the quality
// yardstick for the parallel bucketed algorithm.
func GreedySetCover(g *graphit.Graph) ([]bool, int, error) {
	if !g.Symmetric() {
		return nil, 0, fmt.Errorf("algo: set cover requires a symmetrized graph")
	}
	n := g.NumVertices()
	covered := make([]bool, n)
	chosen := make([]bool, n)
	cnt := make([]int, n)
	maxCnt := 0
	for v := 0; v < n; v++ {
		cnt[v] = g.OutDegree(graphit.VertexID(v)) + 1
		if cnt[v] > maxCnt {
			maxCnt = cnt[v]
		}
	}
	// Lazy-decrement greedy with a bucket queue over coverage counts.
	buckets := make([][]uint32, maxCnt+1)
	for v := 0; v < n; v++ {
		buckets[cnt[v]] = append(buckets[cnt[v]], uint32(v))
	}
	numChosen, numCovered := 0, 0
	recount := func(s uint32) int {
		c := 0
		if !covered[s] {
			c++
		}
		for _, e := range g.OutNeigh(s) {
			if !covered[e] {
				c++
			}
		}
		return c
	}
	for b := maxCnt; b >= 1 && numCovered < n; b-- {
		for i := 0; i < len(buckets[b]); i++ {
			s := buckets[b][i]
			if chosen[s] {
				continue
			}
			c := recount(s)
			if c < b {
				if c >= 1 {
					buckets[c] = append(buckets[c], s)
				}
				continue
			}
			chosen[s] = true
			numChosen++
			if !covered[s] {
				covered[s] = true
				numCovered++
			}
			for _, e := range g.OutNeigh(s) {
				if !covered[e] {
					covered[e] = true
					numCovered++
				}
			}
		}
	}
	return chosen, numChosen, nil
}
