package algo

import (
	"testing"

	"graphit"
)

func roadGraph(t *testing.T) *graphit.Graph {
	t.Helper()
	g, err := graphit.RoadGrid(graphit.RoadOptions{
		Rows: 50, Cols: 50, DeleteFrac: 0.12, DiagFrac: 0.08, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAStarMatchesDijkstraExactSchedules(t *testing.T) {
	g := roadGraph(t)
	pairs := [][2]graphit.VertexID{
		{0, graphit.VertexID(g.NumVertices() - 1)},
		{17, 2040},
		{49, 2450},
	}
	for _, p := range pairs {
		want, err := Dijkstra(g, p[0])
		if err != nil {
			t.Fatal(err)
		}
		// With ∆=1 the consistent Euclidean heuristic makes A* exact.
		for _, sname := range []string{"eager_with_fusion", "eager_no_fusion", "lazy"} {
			res, err := AStar(g, p[0], p[1], graphit.DefaultSchedule().ConfigApplyPriorityUpdate(sname))
			if err != nil {
				t.Fatalf("%s: %v", sname, err)
			}
			if res.Dist[p[1]] != want[p[1]] {
				t.Errorf("%s: A*(%d→%d) = %d, want %d", sname, p[0], p[1], res.Dist[p[1]], want[p[1]])
			}
		}
	}
}

func TestAStarCoarsenedStaysValidPath(t *testing.T) {
	g := roadGraph(t)
	src, dst := graphit.VertexID(3), graphit.VertexID(2470)
	want, err := Dijkstra(g, src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AStar(g, src, dst, graphit.DefaultSchedule().ConfigApplyPriorityUpdateDelta(1<<8))
	if err != nil {
		t.Fatal(err)
	}
	// Coarsening tolerates small priority inversions (paper §2); the
	// result must still be a real path, hence never shorter than optimal.
	if res.Dist[dst] < want[dst] {
		t.Fatalf("A* found impossible distance %d < optimal %d", res.Dist[dst], want[dst])
	}
	if res.Dist[dst] == graphit.Unreached && want[dst] != graphit.Unreached {
		t.Fatalf("A* missed an existing path")
	}
}

func TestAStarVisitsFewerVerticesThanSSSP(t *testing.T) {
	g := roadGraph(t)
	// A nearby target: A*'s directed search should process far fewer
	// vertices than full SSSP (why the paper's A* rows are fastest).
	src, dst := graphit.VertexID(0), graphit.VertexID(5*50+5)
	full, err := SSSP(g, src, graphit.DefaultSchedule())
	if err != nil {
		t.Fatal(err)
	}
	astar, err := AStar(g, src, dst, graphit.DefaultSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if astar.Stats.Processed >= full.Stats.Processed {
		t.Errorf("A* processed %d vertices, full SSSP %d; expected a directed-search saving",
			astar.Stats.Processed, full.Stats.Processed)
	}
}

func TestAStarRequiresCoordinates(t *testing.T) {
	g, err := graphit.RMAT(graphit.DefaultRMAT(6, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AStar(g, 0, 5, graphit.DefaultSchedule()); err == nil {
		t.Fatal("expected error for A* without coordinates")
	}
}

func TestAStarApproxFindsValidDistance(t *testing.T) {
	g := roadGraph(t)
	src, dst := graphit.VertexID(7), graphit.VertexID(1200)
	want, err := Dijkstra(g, src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AStarApprox(g, src, dst, graphit.DefaultSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[dst] < want[dst] {
		t.Fatalf("approx A* distance %d < optimal %d", res.Dist[dst], want[dst])
	}
	if res.Dist[dst] == graphit.Unreached {
		t.Fatal("approx A* missed the target")
	}
}

func TestPPSPApproxFindsValidDistance(t *testing.T) {
	g := roadGraph(t)
	src, dst := graphit.VertexID(7), graphit.VertexID(1200)
	want, err := Dijkstra(g, src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PPSPApprox(g, src, dst, graphit.DefaultSchedule().ConfigApplyPriorityUpdateDelta(64))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[dst] < want[dst] {
		t.Fatalf("approx PPSP distance %d < optimal %d", res.Dist[dst], want[dst])
	}
}
