package algo

import (
	"context"
	"fmt"

	"graphit"
)

// checkLanes validates a multi-source request shape: at least one lane, and
// every per-lane vertex in range (the engine would reject these too, but with
// lane-relative wording; here the caller gets a request-level error first).
func checkLanes(g *graphit.Graph, what string, vs []graphit.VertexID) error {
	if len(vs) == 0 {
		return fmt.Errorf("algo: multi-source run needs at least one %s", what)
	}
	n := g.NumVertices()
	for l, v := range vs {
		if int(v) >= n {
			return fmt.Errorf("algo: lane %d %s vertex %d out of range (graph has %d vertices)", l, what, v, n)
		}
	}
	return nil
}

// multiDistOp builds the k-lane ∆-stepping operator: one initDist vector per
// lane and the shared relaxation UDF from paper Figure 3 (each lane's Queue
// is bound to that lane's distance vector).
func multiDistOp(g *graphit.Graph, srcs []graphit.VertexID) (*graphit.MultiOrdered, [][]int64) {
	n := g.NumVertices()
	lanes := make([][]int64, len(srcs))
	for l, src := range srcs {
		lanes[l] = initDist(n, src)
	}
	op := &graphit.MultiOrdered{
		G:     g,
		Lanes: lanes,
		Order: graphit.LowerFirst,
		Apply: func(s, d graphit.VertexID, w graphit.Weight, q *graphit.Queue) {
			q.UpdatePriorityMin(d, q.Priority(s)+int64(w))
		},
		// Apply is the canonical relaxation with no finished-vertex filter,
		// so push rounds may run the engine's fused lane-batched kernel.
		RelaxMinPlus: true,
		Sources:      srcs,
	}
	return op, lanes
}

func multiResults(lanes [][]int64, ms graphit.MultiStats) []*SSSPResult {
	out := make([]*SSSPResult, len(lanes))
	for l := range lanes {
		out[l] = &SSSPResult{Dist: lanes[l], Stats: ms.Lane(l)}
	}
	return out
}

// SSSPMulti computes single-source shortest paths from k sources in one
// shared ∆-stepping run (one frontier, one bucket structure, one edge sweep
// per round). Each lane's result is element-wise equal to an independent
// SSSP run from that source under the same schedule; per-lane Stats carry
// the lane's relaxation/processed share of the shared rounds. Only lazy
// schedules are accepted (the engine rejects eager strategies).
func SSSPMulti(g *graphit.Graph, srcs []graphit.VertexID, sched graphit.Schedule) ([]*SSSPResult, error) {
	return SSSPMultiContext(context.Background(), g, srcs, sched)
}

// SSSPMultiContext is SSSPMulti under a context. On cancellation or a
// contained fault it returns the partial per-lane results together with the
// error.
func SSSPMultiContext(ctx context.Context, g *graphit.Graph, srcs []graphit.VertexID, sched graphit.Schedule) ([]*SSSPResult, error) {
	if err := checkWeighted(g); err != nil {
		return nil, err
	}
	if err := checkLanes(g, "source", srcs); err != nil {
		return nil, err
	}
	op, lanes := multiDistOp(g, srcs)
	ms, err := graphit.RunOrderedMultiContext(ctx, op, sched)
	if err != nil {
		if halted(ctx, err) {
			return multiResults(lanes, ms), err
		}
		return nil, err
	}
	return multiResults(lanes, ms), nil
}

// WBFSMulti is SSSPMulti specialized to ∆=1 (weighted breadth-first search);
// any ∆ in the schedule is overridden.
func WBFSMulti(g *graphit.Graph, srcs []graphit.VertexID, sched graphit.Schedule) ([]*SSSPResult, error) {
	return WBFSMultiContext(context.Background(), g, srcs, sched)
}

// WBFSMultiContext is WBFSMulti under a context.
func WBFSMultiContext(ctx context.Context, g *graphit.Graph, srcs []graphit.VertexID, sched graphit.Schedule) ([]*SSSPResult, error) {
	return SSSPMultiContext(ctx, g, srcs, sched.ConfigApplyPriorityUpdateDelta(1))
}

// PPSPMulti computes k point-to-point shortest paths in one shared run, with
// a per-lane early-termination condition: lane l stops contributing edge work
// once the shared round priority reaches its best-known distance to dsts[l],
// and the whole run halts when every lane has stopped. Each lane's pair
// distance equals an independent PPSP run's; the rest of a lane's distance
// vector may be settled further than an independent run would have (the
// shared loop keeps rounds alive for unfinished lanes).
func PPSPMulti(g *graphit.Graph, srcs, dsts []graphit.VertexID, sched graphit.Schedule) ([]*SSSPResult, error) {
	return PPSPMultiContext(context.Background(), g, srcs, dsts, sched)
}

// PPSPMultiContext is PPSPMulti under a context.
func PPSPMultiContext(ctx context.Context, g *graphit.Graph, srcs, dsts []graphit.VertexID, sched graphit.Schedule) ([]*SSSPResult, error) {
	if err := checkWeighted(g); err != nil {
		return nil, err
	}
	if err := checkLanes(g, "source", srcs); err != nil {
		return nil, err
	}
	if err := checkLanes(g, "destination", dsts); err != nil {
		return nil, err
	}
	if len(dsts) != len(srcs) {
		return nil, fmt.Errorf("algo: %d destinations for %d sources", len(dsts), len(srcs))
	}
	op, lanes := multiDistOp(g, srcs)
	op.Stops = make([]graphit.StopFunc, len(srcs))
	for l := range op.Stops {
		dist, dst := lanes[l], dsts[l]
		op.Stops[l] = func(cur int64) bool {
			best := graphit.AtomicLoad(&dist[dst])
			return best != graphit.Unreached && cur >= best
		}
	}
	ms, err := graphit.RunOrderedMultiContext(ctx, op, sched)
	if err != nil {
		if halted(ctx, err) {
			return multiResults(lanes, ms), err
		}
		return nil, err
	}
	return multiResults(lanes, ms), nil
}
