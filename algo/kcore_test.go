package algo

import (
	"fmt"
	"testing"

	"graphit"
)

func symGraphs(t *testing.T) map[string]*graphit.Graph {
	t.Helper()
	opt := graphit.DefaultRMAT(10, 8, 99)
	opt.Symmetrize = true
	rmat, err := graphit.RMAT(opt)
	if err != nil {
		t.Fatalf("RMAT: %v", err)
	}
	road, err := graphit.RoadGrid(graphit.RoadOptions{
		Rows: 30, Cols: 30, DeleteFrac: 0.08, DiagFrac: 0.1, Seed: 3,
	})
	if err != nil {
		t.Fatalf("RoadGrid: %v", err)
	}
	return map[string]*graphit.Graph{"rmat": rmat, "road": road}
}

// kcoreSchedules enumerates the schedules valid for k-core (no priority
// coarsening, paper §2).
func kcoreSchedules() map[string]graphit.Schedule {
	base := graphit.DefaultSchedule()
	return map[string]graphit.Schedule{
		"eager_fusion":  base.ConfigApplyPriorityUpdate("eager_with_fusion"),
		"eager_nofuse":  base.ConfigApplyPriorityUpdate("eager_no_fusion"),
		"eager_pull":    base.ConfigApplyPriorityUpdate("eager_no_fusion").ConfigApplyDirection("DensePull"),
		"lazy":          base.ConfigApplyPriorityUpdate("lazy"),
		"lazy_pull":     base.ConfigApplyPriorityUpdate("lazy").ConfigApplyDirection("DensePull"),
		"lazy_histsum":  base.ConfigApplyPriorityUpdate("lazy_constant_sum"),
		"lazy_window16": base.ConfigApplyPriorityUpdate("lazy_constant_sum").ConfigNumBuckets(16),
		"lazy_nodedup":  base.ConfigApplyPriorityUpdate("lazy").ConfigDeduplication(false),
	}
}

func TestKCoreMatchesReferenceAcrossSchedules(t *testing.T) {
	for gname, g := range symGraphs(t) {
		want, err := RefKCore(g)
		if err != nil {
			t.Fatalf("%s: RefKCore: %v", gname, err)
		}
		for sname, sched := range kcoreSchedules() {
			t.Run(fmt.Sprintf("%s/%s", gname, sname), func(t *testing.T) {
				got, err := KCore(g, sched)
				if err != nil {
					t.Fatalf("KCore: %v", err)
				}
				diffs := 0
				for v := range want {
					if got.Coreness[v] != want[v] {
						diffs++
						if diffs <= 5 {
							t.Errorf("coreness[%d] = %d, want %d", v, got.Coreness[v], want[v])
						}
					}
				}
				if diffs > 0 {
					t.Fatalf("%d of %d coreness values differ", diffs, len(want))
				}
			})
		}
	}
}

func TestKCoreRejectsCoarsening(t *testing.T) {
	g := symGraphs(t)["rmat"]
	_, err := KCore(g, graphit.DefaultSchedule().ConfigApplyPriorityUpdateDelta(4))
	if err == nil {
		t.Fatal("expected error for k-core with ∆ > 1")
	}
}

func TestKCoreRejectsDirectedGraph(t *testing.T) {
	g, err := graphit.RMAT(graphit.DefaultRMAT(6, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := KCore(g, graphit.DefaultSchedule()); err == nil {
		t.Fatal("expected error for k-core on a directed graph")
	}
}

func TestUnorderedKCoreMatchesReference(t *testing.T) {
	for gname, g := range symGraphs(t) {
		want, err := RefKCore(g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnorderedKCore(g)
		if err != nil {
			t.Fatalf("%s: UnorderedKCore: %v", gname, err)
		}
		for v := range want {
			if got.Coreness[v] != want[v] {
				t.Fatalf("%s: coreness[%d] = %d, want %d", gname, v, got.Coreness[v], want[v])
			}
		}
	}
}

// TestKCoreOrderedDoesLessWork checks the Figure 1 claim: the ordered
// (bucketed) k-core performs far fewer vertex scans than the unordered
// peeling baseline.
func TestKCoreOrderedDoesLessWork(t *testing.T) {
	g := symGraphs(t)["rmat"]
	ord, err := KCore(g, graphit.DefaultSchedule().ConfigApplyPriorityUpdate("lazy_constant_sum"))
	if err != nil {
		t.Fatal(err)
	}
	unord, err := UnorderedKCore(g)
	if err != nil {
		t.Fatal(err)
	}
	if unord.Stats.Relaxations <= ord.Stats.Relaxations {
		t.Errorf("unordered k-core should do more work: unordered=%d ordered=%d",
			unord.Stats.Relaxations, ord.Stats.Relaxations)
	}
}
