package algo

import (
	"context"
	"fmt"

	"graphit"
)

// KCoreResult carries the output of k-core decomposition.
type KCoreResult struct {
	// Coreness[v] is the largest k such that v belongs to a k-core
	// (paper §6.1's peeling procedure).
	Coreness []int64
	Stats    graphit.Stats
}

// KCore computes the coreness of every vertex of a symmetric graph by the
// bucketed peeling procedure (paper §6.1): vertices are bucketed by induced
// degree; processing bucket k finalizes its vertices with coreness k and
// decrements their neighbors' induced degrees, clamped at k
// (updatePrioritySum with min_threshold, paper Table 1).
//
// k-core tolerates no priority inversion, so the schedule must not coarsen
// priorities (∆ must be 1; paper §2). The lazy_constant_sum schedule
// enables the histogram reduction of paper Figure 10.
func KCore(g *graphit.Graph, sched graphit.Schedule) (*KCoreResult, error) {
	return KCoreContext(context.Background(), g, sched)
}

// KCoreContext is KCore under a context, returning the partially peeled
// coreness vector and ctx.Err() on cancellation.
func KCoreContext(ctx context.Context, g *graphit.Graph, sched graphit.Schedule) (*KCoreResult, error) {
	if !g.Symmetric() {
		return nil, fmt.Errorf("algo: k-core requires a symmetrized graph")
	}
	cfg, err := sched.Config()
	if err != nil {
		return nil, err
	}
	if cfg.Delta > 1 {
		return nil, fmt.Errorf("algo: k-core does not allow priority coarsening (∆=%d)", cfg.Delta)
	}
	n := g.NumVertices()
	deg := make([]int64, n)
	for v := 0; v < n; v++ {
		deg[v] = int64(g.OutDegree(graphit.VertexID(v)))
	}
	op := &graphit.Ordered{
		G:     g,
		Prio:  deg,
		Order: graphit.LowerFirst,
		// The UDF from paper Figure 10 (top): decrement the neighbor's
		// priority by 1, but not below the current core k.
		Apply: func(s, d graphit.VertexID, w graphit.Weight, q *graphit.Queue) {
			q.UpdatePrioritySum(d, -1, q.GetCurrentPriority())
		},
		// The compiler's constant-sum analysis extracts these for the
		// histogram schedule (paper §5.1).
		SumConst:          -1,
		SumFloorIsCurrent: true,
		FinalizeOnPop:     true,
	}
	st, err := graphit.RunOrderedContext(ctx, op, sched)
	if err != nil {
		if halted(ctx, err) {
			return &KCoreResult{Coreness: deg, Stats: st}, err
		}
		return nil, err
	}
	return &KCoreResult{Coreness: deg, Stats: st}, nil
}
