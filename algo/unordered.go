package algo

import (
	"context"
	"fmt"
	"sync/atomic"

	"graphit"
	"graphit/internal/atomicutil"
	"graphit/internal/parallel"
)

// BellmanFord computes single-source shortest paths with the unordered
// frontier-based Bellman-Ford algorithm, the Ligra / unordered-GraphIt
// baseline of the paper's Figure 1 and Table 4: every round relaxes all
// out-edges of the entire active frontier regardless of priority,
// performing redundant work that ∆-stepping avoids.
func BellmanFord(g *graphit.Graph, src graphit.VertexID) (*SSSPResult, error) {
	return BellmanFordContext(context.Background(), g, src)
}

// BellmanFordContext is BellmanFord under a context: cancellation is checked
// at every round barrier and returns the partial distance vector together
// with ctx.Err().
func BellmanFordContext(ctx context.Context, g *graphit.Graph, src graphit.VertexID) (*SSSPResult, error) {
	if err := checkWeighted(g); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	dist := initDist(n, src)
	dedup := atomicutil.NewFlags(n)
	frontier := []uint32{src}
	var st graphit.Stats
	var runErr error
	w := parallel.Workers()
	outs := make([][]uint32, w)

	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		st.Rounds++
		st.GlobalSyncs++
		var relax int64
		parallel.ForChunks(len(frontier), 0, func(lo, hi, worker int) {
			var local int64
			for _, s := range frontier[lo:hi] {
				ds := atomicutil.Load(&dist[s])
				neigh := g.OutNeigh(s)
				wts := g.OutWts(s)
				for i, d := range neigh {
					local++
					if atomicutil.WriteMin(&dist[d], ds+int64(wts[i])) && dedup.TrySet(d) {
						outs[worker] = append(outs[worker], d)
					}
				}
			}
			atomicAdd(&relax, local)
		})
		st.Relaxations += relax
		var next []uint32
		for i := range outs {
			next = append(next, outs[i]...)
			outs[i] = outs[i][:0]
		}
		dedup.ResetList(next)
		st.Processed += int64(len(frontier))
		frontier = next
	}
	return &SSSPResult{Dist: dist, Stats: st}, runErr
}

// UnorderedKCore computes coreness with the unordered peeling baseline
// (Figure 1): for each successive k it repeatedly scans all remaining
// vertices for those with induced degree <= k, without any bucketing, so
// every peel level pays a full-vertex-set scan.
func UnorderedKCore(g *graphit.Graph) (*KCoreResult, error) {
	return UnorderedKCoreContext(context.Background(), g)
}

// UnorderedKCoreContext is UnorderedKCore under a context: cancellation is
// checked at every peel round and returns the partially peeled coreness
// vector together with ctx.Err().
func UnorderedKCoreContext(ctx context.Context, g *graphit.Graph) (*KCoreResult, error) {
	if !g.Symmetric() {
		return nil, fmt.Errorf("algo: k-core requires a symmetrized graph")
	}
	n := g.NumVertices()
	deg := make([]int64, n)
	alive := make([]bool, n)
	maxDeg := int64(0)
	for v := 0; v < n; v++ {
		deg[v] = int64(g.OutDegree(graphit.VertexID(v)))
		alive[v] = true
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	core := make([]int64, n)
	var st graphit.Stats
	remaining := n
	var runErr error
	for k := int64(0); k <= maxDeg && remaining > 0 && runErr == nil; k++ {
		for {
			if err := ctx.Err(); err != nil {
				runErr = err
				break
			}
			st.Rounds++
			st.GlobalSyncs++
			// Full scan: collect alive vertices with degree <= k.
			ids := parallel.IotaU32(n)
			st.Relaxations += int64(n) // scan cost: one check per vertex
			peel := parallel.PackU32(ids, func(i int) bool {
				return alive[i] && deg[i] <= k
			})
			if len(peel) == 0 {
				break
			}
			for _, v := range peel {
				alive[v] = false
				core[v] = k
			}
			parallel.ForChunks(len(peel), 0, func(lo, hi, _ int) {
				for _, v := range peel[lo:hi] {
					for _, d := range g.OutNeigh(v) {
						if alive[d] {
							atomicAdd(&deg[d], -1)
						}
					}
				}
			})
			remaining -= len(peel)
			st.Processed += int64(len(peel))
		}
	}
	return &KCoreResult{Coreness: core, Stats: st}, runErr
}

func atomicAdd(p *int64, v int64) {
	atomic.AddInt64(p, v)
}
