package algo

import (
	"context"

	"graphit"
)

// WidestPathResult carries the output of a widest-path (maximum bottleneck)
// run.
type WidestPathResult struct {
	// Capacity[v] is the largest bottleneck capacity of any src→v path
	// (graphit.NullMax if unreachable).
	Capacity []int64
	Stats    graphit.Stats
}

// WidestPath computes maximum-bottleneck paths from src: the capacity of a
// path is its minimum edge weight, and each vertex gets the maximum
// capacity over all paths. It is the natural higher_first /
// updatePriorityMax member of the paper's model (Table 1): vertices are
// processed in decreasing capacity order and finalized on dequeue, the
// max-queue mirror of ∆-stepping. The paper's eager engines are
// lower_first only (as in GAPBS), so the schedule must use a lazy strategy.
func WidestPath(g *graphit.Graph, src graphit.VertexID, sched graphit.Schedule) (*WidestPathResult, error) {
	return WidestPathContext(context.Background(), g, src, sched)
}

// WidestPathContext is WidestPath under a context, returning the partial
// result and ctx.Err() on cancellation.
func WidestPathContext(ctx context.Context, g *graphit.Graph, src graphit.VertexID, sched graphit.Schedule) (*WidestPathResult, error) {
	if err := checkWeighted(g); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	cap := make([]int64, n)
	for i := range cap {
		cap[i] = graphit.NullMax
	}
	// The source's bottleneck is unbounded; cap it at the largest edge
	// weight so bucket ids stay small.
	maxW := int64(0)
	for _, w := range g.Wts {
		if int64(w) > maxW {
			maxW = int64(w)
		}
	}
	cap[src] = maxW
	op := &graphit.Ordered{
		G:     g,
		Prio:  cap,
		Order: graphit.HigherFirst,
		Apply: func(s, d graphit.VertexID, w graphit.Weight, q *graphit.Queue) {
			nc := q.Priority(s)
			if int64(w) < nc {
				nc = int64(w)
			}
			q.UpdatePriorityMax(d, nc)
		},
		// Capacities are final when dequeued (the max-order analogue of
		// Dijkstra's invariant: relaxations never exceed the current
		// bucket's capacity).
		FinalizeOnPop: true,
		Sources:       []graphit.VertexID{src},
	}
	st, err := graphit.RunOrderedContext(ctx, op, sched)
	if err != nil {
		if halted(ctx, err) {
			return &WidestPathResult{Capacity: cap, Stats: st}, err
		}
		return nil, err
	}
	return &WidestPathResult{Capacity: cap, Stats: st}, nil
}

// RefWidestPath is the sequential reference: Dijkstra with max-min
// relaxation.
func RefWidestPath(g *graphit.Graph, src graphit.VertexID) ([]int64, error) {
	if err := checkWeighted(g); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	cap := make([]int64, n)
	for i := range cap {
		cap[i] = graphit.NullMax
	}
	maxW := int64(0)
	for _, w := range g.Wts {
		if int64(w) > maxW {
			maxW = int64(w)
		}
	}
	cap[src] = maxW
	done := make([]bool, n)
	for {
		best, bv := graphit.NullMax, -1
		for v := 0; v < n; v++ {
			if !done[v] && cap[v] != graphit.NullMax && cap[v] > best {
				best, bv = cap[v], v
			}
		}
		if bv < 0 {
			break
		}
		done[bv] = true
		wts := g.OutWts(graphit.VertexID(bv))
		for i, d := range g.OutNeigh(graphit.VertexID(bv)) {
			nc := best
			if int64(wts[i]) < nc {
				nc = int64(wts[i])
			}
			if nc > cap[d] {
				cap[d] = nc
			}
		}
	}
	return cap, nil
}
