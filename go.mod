module graphit

go 1.22
