package graphit

import (
	"context"

	"graphit/internal/bucket"
	"graphit/internal/core"
)

// Order is the processing order of a priority queue.
type Order = bucket.Order

// Priority-queue orderings: lower_first processes the smallest priority
// first (SSSP family, k-core); higher_first the largest (SetCover).
const (
	LowerFirst  Order = bucket.Increasing
	HigherFirst Order = bucket.Decreasing
)

// Queue is the per-worker handle through which user-defined edge functions
// perform priority updates — the runtime face of the paper's Table 1
// operators (updatePriorityMin / updatePriorityMax / updatePrioritySum,
// getCurrentPriority, finishedVertex).
type Queue = core.Updater

// EdgeFunc is a user-defined edge update function, the library analogue of
// the DSL's updateEdge UDF (paper Figure 3, lines 7–10).
type EdgeFunc = core.EdgeFunc

// StopFunc is a customized stop condition checked once per round with the
// priority of the bucket about to be processed.
type StopFunc = core.StopFunc

// Ordered is a fully-configured ordered edgeset-apply operator — the
// runtime object the GraphIt compiler generates for
// `while(pq.finished()==false){ ... applyUpdatePriority(f) }` loops.
// Populate its fields and call Run, or use the helpers in package
// graphit/algo.
type Ordered = core.Ordered

// RunOrdered executes op under schedule s and returns execution counters.
func RunOrdered(op *Ordered, s Schedule) (Stats, error) {
	return RunOrderedContext(context.Background(), op, s)
}

// RunOrderedContext executes op under schedule s and context ctx. The
// engine checks ctx cooperatively at every round barrier: a cancelled or
// expired context halts the run within one round and returns the partial
// Stats accumulated so far together with ctx.Err().
func RunOrderedContext(ctx context.Context, op *Ordered, s Schedule) (Stats, error) {
	cfg, err := s.Config()
	if err != nil {
		return Stats{}, err
	}
	op.Cfg = cfg
	return op.RunContext(ctx)
}

// MultiOrdered executes k single-source ordered operators ("lanes") as one
// shared round loop: one frontier and bucket structure keyed by the minimum
// pending priority across lanes, one edge sweep per round applying the UDF
// once per (edge, active lane). Each lane's priority vector converges to
// exactly the result an independent single-source run would produce. Lazy
// strategies with lower_first order only; see core.MultiOrdered.
type MultiOrdered = core.MultiOrdered

// MultiStats reports one multi-source run: shared round-loop counters plus
// the per-lane relaxation/processed split (see MultiStats.Lane).
type MultiStats = core.MultiStats

// LaneStats is the per-lane slice of a multi-source run's counters.
type LaneStats = core.LaneStats

// MaxLanes bounds the lane count of one multi-source run.
const MaxLanes = core.MaxLanes

// RunOrderedMulti executes the multi-source operator op under schedule s.
func RunOrderedMulti(op *MultiOrdered, s Schedule) (MultiStats, error) {
	return RunOrderedMultiContext(context.Background(), op, s)
}

// RunOrderedMultiContext is RunOrderedMulti under a context, with the same
// cooperative cancellation contract as RunOrderedContext.
func RunOrderedMultiContext(ctx context.Context, op *MultiOrdered, s Schedule) (MultiStats, error) {
	cfg, err := s.Config()
	if err != nil {
		return MultiStats{}, err
	}
	op.Cfg = cfg
	return op.RunContext(ctx)
}

// Tracer observes engine execution with structured per-round events
// (bucket id, frontier size, relaxations, fused iterations, wall time).
// Attach one via the Ordered.Trace field or WithTracer.
type Tracer = core.Tracer

// RunInfo is the run-level trace record emitted before the first round.
type RunInfo = core.RunInfo

// RoundEvent is one per-round trace record.
type RoundEvent = core.RoundEvent

// NopTracer is the zero-cost default Tracer.
type NopTracer = core.NopTracer

// MemTracer records trace events in memory (tests, the autotuner).
type MemTracer = core.MemTracer

// NewJSONTracer returns a Tracer writing one JSON object per line per event
// — the format behind `cmd/ordered -trace`.
var NewJSONTracer = core.NewJSONTracer

// WithTracer returns a context carrying t; runs started with that context
// (RunOrderedContext, the algo Context entry points) report to it unless the
// operator sets an explicit Trace.
func WithTracer(ctx context.Context, t Tracer) context.Context {
	return core.WithTracer(ctx, t)
}

// TracerFrom extracts the Tracer installed by WithTracer, if any.
func TracerFrom(ctx context.Context) (Tracer, bool) { return core.TracerFrom(ctx) }

// PanicError reports a panic recovered from an engine phase (typically a
// user edge function). The run halts with partial Stats, the process and
// worker pools stay intact, and the error carries the phase, round, panic
// value, and the panicking goroutine's stack. Test with errors.As.
type PanicError = core.PanicError

// StuckError reports a run aborted by the round watchdog
// (ConfigRoundTimeout) or the no-progress detector (ConfigStuckRounds),
// with recent per-round trace events attached for diagnosis.
type StuckError = core.StuckError

// FaultPolicy selects how the engine reacts to a contained fault; see
// FaultFail and FaultRetrySerial.
type FaultPolicy = core.FaultPolicy

const (
	// FaultFail stops the run on a contained fault and returns the typed
	// error with partial Stats (the default).
	FaultFail = core.FaultFail
	// FaultRetrySerial re-executes a faulted round serially and
	// deterministically, rebuilds the bucket state from the priority
	// vector, and resumes in parallel.
	FaultRetrySerial = core.FaultRetrySerial
)

// ParseFaultPolicy parses a fault policy name: "fail" or "retry_serial".
var ParseFaultPolicy = core.ParseFaultPolicy

// Fault kinds returned by ClassifyFault — the serving layer's taxonomy of
// run outcomes (see graphit/internal/server for the consumer).
const (
	FaultKindNone     = core.FaultKindNone
	FaultKindPanic    = core.FaultKindPanic
	FaultKindStuck    = core.FaultKindStuck
	FaultKindCanceled = core.FaultKindCanceled
)

// ClassifyFault maps an error returned by the run entry points (or any
// wrapper preserving the error chain) to its fault kind: FaultKindPanic for
// a contained *PanicError, FaultKindStuck for a watchdog *StuckError,
// FaultKindCanceled for context cancellation/expiry, FaultKindNone
// otherwise.
var ClassifyFault = core.ClassifyFault

// IsEngineFault reports whether err is a contained engine fault (a
// recovered panic or a watchdog abort) — the outcomes a circuit breaker
// should count against an (algo, strategy) key, as opposed to client
// cancellation or request validation errors.
var IsEngineFault = core.IsEngineFault
