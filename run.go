package graphit

import (
	"graphit/internal/bucket"
	"graphit/internal/core"
)

// Order is the processing order of a priority queue.
type Order = bucket.Order

// Priority-queue orderings: lower_first processes the smallest priority
// first (SSSP family, k-core); higher_first the largest (SetCover).
const (
	LowerFirst  Order = bucket.Increasing
	HigherFirst Order = bucket.Decreasing
)

// Queue is the per-worker handle through which user-defined edge functions
// perform priority updates — the runtime face of the paper's Table 1
// operators (updatePriorityMin / updatePriorityMax / updatePrioritySum,
// getCurrentPriority, finishedVertex).
type Queue = core.Updater

// EdgeFunc is a user-defined edge update function, the library analogue of
// the DSL's updateEdge UDF (paper Figure 3, lines 7–10).
type EdgeFunc = core.EdgeFunc

// Ordered is a fully-configured ordered edgeset-apply operator — the
// runtime object the GraphIt compiler generates for
// `while(pq.finished()==false){ ... applyUpdatePriority(f) }` loops.
// Populate its fields and call Run, or use the helpers in package
// graphit/algo.
type Ordered = core.Ordered

// RunOrdered executes op under schedule s and returns execution counters.
func RunOrdered(op *Ordered, s Schedule) (Stats, error) {
	cfg, err := s.Config()
	if err != nil {
		return Stats{}, err
	}
	op.Cfg = cfg
	return op.Run()
}
