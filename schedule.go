package graphit

import (
	"fmt"
	"time"

	"graphit/internal/core"
)

// Schedule is the programmatic form of the paper's scheduling language
// (Table 2 plus the original GraphIt direction/parallelization commands
// used in Figure 8). Schedules are immutable values configured fluently:
//
//	s := graphit.DefaultSchedule().
//		ConfigApplyPriorityUpdate("eager_with_fusion").
//		ConfigApplyPriorityUpdateDelta(16384).
//		ConfigApplyDirection("SparsePush")
//
// Invalid settings are recorded and reported when the schedule is used, so
// call sites can chain without per-call error handling (mirroring how the
// DSL reports schedule errors at compile time).
type Schedule struct {
	cfg core.Config
	err error
}

// DefaultSchedule returns the scheduling language's defaults (bold options
// in paper Table 2): eager_with_fusion, ∆=1, fusion threshold 1000, 128
// materialized lazy buckets, SparsePush.
func DefaultSchedule() Schedule {
	return Schedule{cfg: core.DefaultConfig()}
}

// ConfigApplyPriorityUpdate selects the bucket update strategy: one of
// "eager_with_fusion", "eager_no_fusion", "lazy", "lazy_constant_sum".
func (s Schedule) ConfigApplyPriorityUpdate(strategy string) Schedule {
	st, err := core.ParseStrategy(strategy)
	if err != nil {
		return s.fail(err)
	}
	s.cfg.Strategy = st
	return s
}

// ConfigApplyPriorityUpdateDelta sets the priority-coarsening factor ∆.
func (s Schedule) ConfigApplyPriorityUpdateDelta(delta int64) Schedule {
	if delta < 1 {
		return s.fail(fmt.Errorf("schedule: delta must be >= 1, got %d", delta))
	}
	s.cfg.Delta = delta
	return s
}

// ConfigBucketFusionThreshold sets the local-bucket size limit below which
// rounds are fused without synchronization.
func (s Schedule) ConfigBucketFusionThreshold(t int) Schedule {
	if t < 1 {
		return s.fail(fmt.Errorf("schedule: fusion threshold must be >= 1, got %d", t))
	}
	s.cfg.FusionThreshold = t
	return s
}

// ConfigNumBuckets sets the number of materialized buckets for the lazy
// strategies (Julienne keeps vertices beyond this window in an overflow
// bucket).
func (s Schedule) ConfigNumBuckets(n int) Schedule {
	if n < 1 {
		return s.fail(fmt.Errorf("schedule: bucket count must be >= 1, got %d", n))
	}
	s.cfg.NumBuckets = n
	return s
}

// ConfigDeduplication enables or disables per-round deduplication of the
// lazy push buffer. The compiler normally inserts deduplication when the
// algorithm needs it (paper §5.1); disabling it trades extra bucket
// insertions for skipping the CAS flags.
func (s Schedule) ConfigDeduplication(enabled bool) Schedule {
	s.cfg.NoDedup = !enabled
	return s
}

// ConfigApplyDirection selects the traversal direction: "SparsePush",
// "DensePull", or "DensePull-SparsePush" (per-round hybrid, lazy only).
func (s Schedule) ConfigApplyDirection(dir string) Schedule {
	d, err := core.ParseDirection(dir)
	if err != nil {
		return s.fail(err)
	}
	s.cfg.Direction = d
	return s
}

// ConfigApplyParallelization sets the dynamic-scheduling grain size
// ("dynamic-vertex-parallel" with an explicit chunk, paper Figure 8).
func (s Schedule) ConfigApplyParallelization(grain int) Schedule {
	if grain < 1 {
		return s.fail(fmt.Errorf("schedule: grain must be >= 1, got %d", grain))
	}
	s.cfg.Grain = grain
	return s
}

// ConfigNumWorkers pins the number of workers for this operator (0 uses the
// global setting).
func (s Schedule) ConfigNumWorkers(w int) Schedule {
	if w < 0 {
		return s.fail(fmt.Errorf("schedule: worker count must be >= 0, got %d", w))
	}
	s.cfg.Workers = w
	return s
}

// ConfigRoundTimeout arms the engine's round watchdog: any round in flight
// longer than d is aborted with a StuckError (or retried, under
// ConfigOnFault("retry_serial")). The abort is cooperative, checked at
// chunk boundaries inside traversal phases; 0 disables the watchdog.
func (s Schedule) ConfigRoundTimeout(d time.Duration) Schedule {
	if d < 0 {
		return s.fail(fmt.Errorf("schedule: round timeout must be >= 0, got %v", d))
	}
	s.cfg.RoundTimeout = d
	return s
}

// ConfigStuckRounds aborts the run with a StuckError after k consecutive
// rounds that extract the same bucket with zero relaxations — a state a
// correct engine cannot reach. 0 disables the detector.
func (s Schedule) ConfigStuckRounds(k int) Schedule {
	if k < 0 {
		return s.fail(fmt.Errorf("schedule: stuck-round count must be >= 0, got %d", k))
	}
	s.cfg.StuckRounds = k
	return s
}

// ConfigOnFault selects the engine's reaction to a contained fault — a
// recovered panic or a watchdog-aborted round: "fail" (return the typed
// error with partial Stats, the default) or "retry_serial" (re-execute the
// faulted round serially and resume).
func (s Schedule) ConfigOnFault(policy string) Schedule {
	p, err := core.ParseFaultPolicy(policy)
	if err != nil {
		return s.fail(err)
	}
	s.cfg.OnFault = p
	return s
}

// Err returns the first configuration error, if any.
func (s Schedule) Err() error { return s.err }

// Config exposes the underlying runtime configuration (for the experiment
// harness and the compiler backends).
func (s Schedule) Config() (core.Config, error) {
	return s.cfg, s.err
}

// String renders the schedule in the scheduling language's notation.
func (s Schedule) String() string {
	if s.err != nil {
		return fmt.Sprintf("invalid schedule: %v", s.err)
	}
	return s.cfg.String()
}

func (s Schedule) fail(err error) Schedule {
	if s.err == nil {
		s.err = err
	}
	return s
}
