package graphit_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIEndToEnd builds the four command-line tools and drives them
// through a realistic session: generate a graph, run algorithms against
// sequential verification, and push a DSL program through every graphitc
// mode.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI round-trip builds binaries; skipped in -short mode")
	}
	binDir := t.TempDir()
	dataDir := t.TempDir()
	build := func(name string) string {
		t.Helper()
		bin := filepath.Join(binDir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		return bin
	}
	run := func(bin string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin, args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
		}
		return string(out)
	}
	graphgen := build("graphgen")
	ordered := build("ordered")
	graphitc := build("graphitc")

	// 1. Generate a road network (.bin) and a social graph (.wel).
	roadBin := filepath.Join(dataDir, "road.bin")
	run(graphgen, "-kind", "road", "-rows", "60", "-cols", "60", "-seed", "4", "-o", roadBin)
	socialWel := filepath.Join(dataDir, "social.wel")
	run(graphgen, "-kind", "rmat", "-scale", "10", "-edgefactor", "8", "-seed", "4", "-o", socialWel)

	// 2. SSSP with verification against Dijkstra.
	out := run(ordered, "-algo", "sssp", "-graph", roadBin, "-src", "0",
		"-strategy", "eager_with_fusion", "-delta", "256", "-verify")
	if !strings.Contains(out, "verify: OK") {
		t.Fatalf("sssp verify missing:\n%s", out)
	}
	// 3. k-core (lazy constant-sum) with verification.
	out = run(ordered, "-algo", "kcore", "-graph", socialWel, "-symmetrize",
		"-strategy", "lazy_constant_sum", "-verify")
	if !strings.Contains(out, "verify: OK") {
		t.Fatalf("kcore verify missing:\n%s", out)
	}
	// 4. A* on the road network (it has coordinates in the .bin).
	out = run(ordered, "-algo", "astar", "-graph", roadBin, "-src", "0", "-dst", "3599", "-delta", "64")
	if !strings.Contains(out, "dist(0 -> 3599)") {
		t.Fatalf("astar output unexpected:\n%s", out)
	}
	// 5. SetCover.
	out = run(ordered, "-algo", "setcover", "-graph", socialWel, "-symmetrize")
	if !strings.Contains(out, "cover size") {
		t.Fatalf("setcover output unexpected:\n%s", out)
	}

	// 6. graphitc: check, ast, emit, run.
	ssspGT := filepath.Join("testdata", "dsl", "sssp.gt")
	if !strings.Contains(run(graphitc, "-check", ssspGT), "OK") {
		t.Fatal("graphitc -check failed")
	}
	if !strings.Contains(run(graphitc, "-ast", ssspGT), "applyUpdatePriority") {
		t.Fatal("graphitc -ast lost the operator")
	}
	if !strings.Contains(run(graphitc, "-emit", ssspGT), "graphit.RunOrdered") {
		t.Fatal("graphitc -emit did not target the runtime")
	}
	schedFile := filepath.Join(dataDir, "sched.txt")
	if err := os.WriteFile(schedFile, []byte(
		`program->configApplyPriorityUpdate("s1", "lazy")->configApplyPriorityUpdateDelta("s1", "128");`), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run(graphitc, "-run", "-graph", roadBin, "-schedule", schedFile, "-stats", ssspGT, "0")
	if !strings.Contains(out, "stats: rounds=") {
		t.Fatalf("graphitc -run -stats output unexpected:\n%s", out)
	}
	// 7. PPSP DSL program prints the distance; cross-check with ordered.
	ppspGT := filepath.Join("testdata", "dsl", "ppsp.gt")
	dslOut := strings.TrimSpace(run(graphitc, "-run", "-graph", roadBin, ppspGT, "0", "1234"))
	cliOut := run(ordered, "-algo", "ppsp", "-graph", roadBin, "-src", "0", "-dst", "1234", "-delta", "1")
	if dslOut == "" || !strings.Contains(cliOut, "= "+firstLine(dslOut)) {
		t.Fatalf("DSL ppsp (%q) and ordered ppsp disagree:\n%s", dslOut, cliOut)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// TestExamplesRun executes every example main to keep them working as the
// library evolves.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples build binaries; skipped in -short mode")
	}
	examples := map[string]string{
		"quickstart":  "all three implementations agree",
		"roadnav":     "all methods agree on the shortest travel time",
		"socialcore":  "broadcast cover",
		"dslpipeline": "identical distances",
		"autotune":    "scheduling-language form",
	}
	for name, marker := range examples {
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+name)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if !strings.Contains(string(out), marker) {
				t.Fatalf("example %s output missing %q:\n%s", name, marker, out)
			}
		})
	}
}

// TestCLIAutotune drives graphitc's autotuner end to end: the printed
// schedule must be valid scheduling-language text that graphitc itself can
// consume on a subsequent run.
func TestCLIAutotune(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	binDir := t.TempDir()
	dataDir := t.TempDir()
	graphitc := filepath.Join(binDir, "graphitc")
	if out, err := exec.Command("go", "build", "-o", graphitc, "./cmd/graphitc").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	graphgen := filepath.Join(binDir, "graphgen")
	if out, err := exec.Command("go", "build", "-o", graphgen, "./cmd/graphgen").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	roadBin := filepath.Join(dataDir, "road.bin")
	if out, err := exec.Command(graphgen, "-kind", "road", "-rows", "50", "-cols", "50", "-o", roadBin).CombinedOutput(); err != nil {
		t.Fatalf("graphgen: %v\n%s", err, out)
	}
	out, err := exec.Command(graphitc, "-autotune", "-trials", "8", "-graph", roadBin,
		filepath.Join("testdata", "dsl", "sssp.gt"), "0").Output()
	if err != nil {
		t.Fatalf("autotune: %v", err)
	}
	text := string(out)
	if !strings.Contains(text, "configApplyPriorityUpdate") {
		t.Fatalf("no schedule emitted:\n%s", text)
	}
	schedFile := filepath.Join(dataDir, "tuned.txt")
	if err := os.WriteFile(schedFile, out, 0o644); err != nil {
		t.Fatal(err)
	}
	if out2, err := exec.Command(graphitc, "-run", "-graph", roadBin, "-schedule", schedFile,
		filepath.Join("testdata", "dsl", "sssp.gt"), "0").CombinedOutput(); err != nil {
		t.Fatalf("running with the autotuned schedule failed: %v\n%s", err, out2)
	}
}
